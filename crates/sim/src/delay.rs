//! Propagation-delay study: why uncle rewards exist at all.
//!
//! Section VI of the paper recalls that uncle and nephew rewards were
//! introduced to counter *centralization bias*: with real propagation
//! delay, large miners hear about their own blocks instantly and therefore
//! orphan fewer of them, earning a super-proportional revenue share.
//! Rewarding stale blocks compresses that advantage.
//!
//! This module simulates an **all-honest** network with a propagation
//! delay: block production is a Poisson process over weighted miners; a
//! block published at time `t` becomes visible to others at `t + delay`,
//! while its producer sees it immediately. Each miner mines on the longest
//! chain *it can see* and references every visible eligible uncle.
//! Accounting then reuses the standard tree machinery, so the same run can
//! be scored under Ethereum and Bitcoin reward schedules.
//!
//! ```
//! use seleth_sim::delay::{DelayConfig, DelaySimulation};
//!
//! // Two miners, one 10x larger; blocks every 13 "seconds", 6-second delay.
//! let config = DelayConfig::builder()
//!     .shares(vec![0.6, 0.2, 0.2])
//!     .delay(6.0)
//!     .blocks(5_000)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let report = DelaySimulation::new(config).run();
//! // The large miner orphans proportionally fewer of its blocks.
//! assert!(report.stale_fraction(0) <= report.stale_fraction(1) + 0.05);
//! ```

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use seleth_chain::accounting::{self, MinerRewards};
use seleth_chain::forkchoice::{longest_chain, TieBreak};
use seleth_chain::{BlockId, BlockTree, MinerId, RewardSchedule};

use crate::config::SimError;

/// Configuration of a delay study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayConfig {
    shares: Vec<f64>,
    delay: f64,
    interval: f64,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
}

/// Builder for [`DelayConfig`].
#[derive(Debug, Clone)]
pub struct DelayConfigBuilder {
    shares: Vec<f64>,
    delay: f64,
    interval: f64,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
}

impl Default for DelayConfigBuilder {
    fn default() -> Self {
        DelayConfigBuilder {
            shares: vec![0.25; 4],
            delay: 6.0,
            interval: 13.0,
            blocks: 100_000,
            seed: 0,
            schedule: RewardSchedule::ethereum(),
        }
    }
}

impl DelayConfigBuilder {
    /// Hash-power shares per miner (normalized at build).
    pub fn shares(&mut self, shares: Vec<f64>) -> &mut Self {
        self.shares = shares;
        self
    }

    /// Propagation delay, in the same time unit as `interval`.
    pub fn delay(&mut self, delay: f64) -> &mut Self {
        self.delay = delay;
        self
    }

    /// Mean block interval (Ethereum ≈ 13 s; Bitcoin 600 s).
    pub fn interval(&mut self, interval: f64) -> &mut Self {
        self.interval = interval;
        self
    }

    /// Number of blocks to mine.
    pub fn blocks(&mut self, blocks: u64) -> &mut Self {
        self.blocks = blocks;
        self
    }

    /// RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Reward schedule used for accounting.
    pub fn schedule(&mut self, schedule: RewardSchedule) -> &mut Self {
        self.schedule = schedule;
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// [`SimError::NoHonestMiners`] without at least two miners (a solo
    /// network has no propagation), [`SimError::NoBlocks`] for an empty
    /// budget, [`SimError::InvalidAlpha`] if shares are not positive
    /// finite numbers or the delay/interval are not positive.
    pub fn build(&self) -> Result<DelayConfig, SimError> {
        if self.shares.len() < 2 {
            return Err(SimError::NoHonestMiners);
        }
        if self.blocks == 0 {
            return Err(SimError::NoBlocks);
        }
        let total: f64 = self.shares.iter().sum();
        if !total.is_finite()
            || total <= 0.0
            || self.shares.iter().any(|s| !s.is_finite() || *s < 0.0)
        {
            return Err(SimError::InvalidAlpha { alpha: total });
        }
        let timing_ok = self.delay.is_finite()
            && self.delay >= 0.0
            && self.interval.is_finite()
            && self.interval > 0.0;
        if !timing_ok {
            return Err(SimError::InvalidAlpha { alpha: self.delay });
        }
        Ok(DelayConfig {
            shares: self.shares.iter().map(|s| s / total).collect(),
            delay: self.delay,
            interval: self.interval,
            blocks: self.blocks,
            seed: self.seed,
            schedule: self.schedule.clone(),
        })
    }
}

impl DelayConfig {
    /// Start building a configuration.
    pub fn builder() -> DelayConfigBuilder {
        DelayConfigBuilder::default()
    }

    /// Normalized hash shares.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Propagation delay.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Mean block interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }
}

/// The delay-study simulator.
#[derive(Debug)]
pub struct DelaySimulation {
    config: DelayConfig,
    rng: ChaCha12Rng,
    tree: BlockTree,
    /// Publication time per block (creation time; visible to others at
    /// `+delay`).
    pub_time: Vec<f64>,
    /// Best (highest, earliest-seen) block among those visible to all.
    best_public: BlockId,
    /// Blocks still inside someone's delay window, oldest first.
    recent: std::collections::VecDeque<BlockId>,
    now: f64,
}

/// Outcome of a delay run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayReport {
    /// Normalized hash shares the run used.
    pub shares: Vec<f64>,
    /// Per-miner accounting.
    pub report: accounting::RewardReport,
}

impl DelaySimulation {
    /// Set up a run.
    pub fn new(config: DelayConfig) -> Self {
        let tree = BlockTree::new();
        let rng = ChaCha12Rng::seed_from_u64(config.seed());
        let best_public = tree.genesis();
        DelaySimulation {
            config,
            rng,
            tree,
            pub_time: vec![f64::NEG_INFINITY], // genesis: always visible
            best_public,
            recent: std::collections::VecDeque::new(),
            now: 0.0,
        }
    }

    /// Run to the block budget and account the tree.
    pub fn run(mut self) -> DelayReport {
        for _ in 0..self.config.blocks {
            self.step();
        }
        let chain = longest_chain(&self.tree, TieBreak::FirstSeen);
        let report = accounting::account(&self.tree, &chain, &self.config.schedule);
        DelayReport {
            shares: self.config.shares.clone(),
            report,
        }
    }

    fn step(&mut self) {
        // Exponential inter-arrival; the winner is share-weighted.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.now += -self.config.interval * u.ln();
        let miner = self.pick_miner();

        // Promote fully propagated recent blocks into the public frontier.
        let horizon = self.now - self.config.delay;
        while let Some(&front) = self.recent.front() {
            if self.pub_time[front.index()] <= horizon {
                self.recent.pop_front();
                if self.tree.height(front) > self.tree.height(self.best_public) {
                    self.best_public = front;
                }
            } else {
                break;
            }
        }

        // The miner's view: the global public frontier plus any block it
        // mined itself that is still propagating.
        let mut tip = self.best_public;
        for &b in &self.recent {
            if self.tree.block(b).miner() == miner && self.tree.height(b) > self.tree.height(tip) {
                tip = b;
            }
        }

        let refs = self.collect_refs(tip, miner);
        let id = self
            .tree
            .add_block(tip, miner, &refs)
            .expect("engine-created ids");
        self.pub_time.push(self.now);
        self.recent.push_back(id);
    }

    fn pick_miner(&mut self) -> MinerId {
        let x: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, share) in self.config.shares.iter().enumerate() {
            acc += share;
            if x < acc {
                return MinerId(i as u32);
            }
        }
        MinerId(self.config.shares.len() as u32 - 1)
    }

    /// Ethereum uncle referencing against the miner's *visible* blocks.
    fn collect_refs(&self, parent: BlockId, miner: MinerId) -> Vec<BlockId> {
        let schedule = &self.config.schedule;
        let max_d = schedule.max_uncle_distance();
        if max_d == 0 {
            return Vec::new();
        }
        let cap = schedule.max_uncles_per_block().unwrap_or(usize::MAX);
        if cap == 0 {
            return Vec::new();
        }
        let new_height = self.tree.height(parent) + 1;
        let horizon = self.now - self.config.delay;

        let mut ancestors = Vec::with_capacity(max_d as usize + 1);
        let mut cur = parent;
        for _ in 0..=max_d {
            ancestors.push(cur);
            match self.tree.block(cur).parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        let on_chain: std::collections::HashSet<BlockId> = ancestors.iter().copied().collect();
        let referenced: std::collections::HashSet<BlockId> = ancestors
            .iter()
            .flat_map(|&a| self.tree.block(a).uncle_refs().iter().copied())
            .collect();

        let mut refs = Vec::new();
        'outer: for &a in &ancestors[1..] {
            if new_height - self.tree.height(a) > max_d + 1 {
                break;
            }
            for &u in self.tree.children(a) {
                let visible =
                    self.pub_time[u.index()] <= horizon || self.tree.block(u).miner() == miner;
                if on_chain.contains(&u) || referenced.contains(&u) || !visible {
                    continue;
                }
                refs.push(u);
                if refs.len() >= cap {
                    break 'outer;
                }
            }
        }
        refs
    }
}

impl DelayReport {
    /// Rewards of miner `i`.
    pub fn miner(&self, i: usize) -> MinerRewards {
        self.report.miner(MinerId(i as u32))
    }

    /// Miner `i`'s share of all rewards paid.
    pub fn revenue_share(&self, i: usize) -> f64 {
        let total = self.report.total_reward();
        if total > 0.0 {
            self.miner(i).total() / total
        } else {
            0.0
        }
    }

    /// Fraction of miner `i`'s blocks that earned nothing (plain stale).
    pub fn stale_fraction(&self, i: usize) -> f64 {
        let m = self.miner(i);
        let mined = m.regular_blocks + m.uncle_blocks + m.stale_blocks;
        if mined == 0 {
            return 0.0;
        }
        m.stale_blocks as f64 / mined as f64
    }

    /// Miner `i`'s *advantage*: revenue share divided by hash share; 1.0
    /// is perfectly fair, above 1.0 means the miner profits from its size.
    pub fn advantage(&self, i: usize) -> f64 {
        self.revenue_share(i) / self.shares[i]
    }

    /// System-wide fraction of blocks that ended up off the main chain.
    pub fn orphan_rate(&self) -> f64 {
        let total = self.report.block_count().max(1) as f64;
        (self.report.uncle_count + self.report.stale_count) as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shares: Vec<f64>, delay: f64, schedule: RewardSchedule, seed: u64) -> DelayReport {
        let config = DelayConfig::builder()
            .shares(shares)
            .delay(delay)
            .blocks(40_000)
            .seed(seed)
            .schedule(schedule)
            .build()
            .unwrap();
        DelaySimulation::new(config).run()
    }

    #[test]
    fn zero_delay_means_no_forks() {
        let r = run(vec![0.5, 0.3, 0.2], 0.0, RewardSchedule::ethereum(), 1);
        assert_eq!(r.orphan_rate(), 0.0);
        // Fair shares within sampling noise.
        for i in 0..3 {
            assert!(
                (r.advantage(i) - 1.0).abs() < 0.05,
                "miner {i}: {}",
                r.advantage(i)
            );
        }
    }

    #[test]
    fn delay_creates_orphans_at_ethereum_rates() {
        // delay/interval ≈ 0.46: a sizeable natural fork rate, like early
        // Ethereum's.
        let r = run(vec![0.25; 4], 6.0, RewardSchedule::ethereum(), 2);
        assert!(r.orphan_rate() > 0.05, "orphan rate {}", r.orphan_rate());
        assert!(r.orphan_rate() < 0.5);
        // Most orphans are referenced as uncles under unlimited refs.
        assert!(r.report.uncle_count > r.report.stale_count);
    }

    #[test]
    fn big_miners_orphan_less() {
        let r = run(
            vec![0.6, 0.1, 0.1, 0.1, 0.1],
            6.0,
            RewardSchedule::bitcoin(),
            3,
        );
        let big = r.stale_fraction(0);
        let small: f64 = (1..5).map(|i| r.stale_fraction(i)).sum::<f64>() / 4.0;
        assert!(
            big < small,
            "big miner stale {big:.4} should undercut small miners' {small:.4}"
        );
    }

    #[test]
    fn uncle_rewards_compress_the_size_advantage() {
        // The paper's Section VI premise: rewarding stale blocks reduces
        // the big miner's edge. Same seed, same tree dynamics — only the
        // reward schedule differs.
        let shares = vec![0.6, 0.1, 0.1, 0.1, 0.1];
        let btc = run(shares.clone(), 6.0, RewardSchedule::bitcoin(), 4);
        let eth = run(shares, 6.0, RewardSchedule::ethereum(), 4);
        let adv_btc = btc.advantage(0);
        let adv_eth = eth.advantage(0);
        assert!(adv_btc > 1.0, "without uncle rewards size pays: {adv_btc}");
        assert!(
            adv_eth < adv_btc,
            "uncle rewards must shrink the advantage: {adv_eth} vs {adv_btc}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9);
        let b = run(vec![0.5, 0.5], 4.0, RewardSchedule::ethereum(), 9);
        assert_eq!(a.report.total_reward(), b.report.total_reward());
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            DelayConfig::builder().shares(vec![1.0]).build(),
            Err(SimError::NoHonestMiners)
        ));
        assert!(DelayConfig::builder()
            .shares(vec![2.0, 6.0])
            .build()
            .is_ok());
        assert!(DelayConfig::builder().delay(-1.0).build().is_err());
        assert!(DelayConfig::builder().blocks(0).build().is_err());
    }
}
