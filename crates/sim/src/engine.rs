//! The discrete-event simulation engine.
//!
//! Mining is simulated at block granularity: since broadcast is
//! instantaneous in the paper's network model (Section IV-A), the system
//! state only changes when a block is found, and the finder is the pool
//! with probability `α` or a uniformly random honest miner otherwise. The
//! selfish pool runs Algorithm 1 verbatim; honest miners follow the
//! protocol, breaking ties toward the pool's published branch with
//! probability `γ`.
//!
//! Unlike the analytical model, blocks here are real: the engine maintains
//! a [`BlockTree`], publication status, and per-block uncle references
//! created under Ethereum's validity rules at mining time.
//!
//! # Policy playback
//!
//! Besides the three hand-coded strategies, the engine can replay an
//! exported MDP policy artifact ([`seleth_mdp::PolicyTable`],
//! [`crate::config::PoolStrategy::Table`]). Playback follows the MDP's
//! decision structure: before every block event the pool consults the
//! table at the live `(a, h, fork, match_d)` state and executes the
//! prescribed action over the real block tree — *adopt* (abandon the
//! private branch), *override* (publish `h + 1` blocks), *match* (publish
//! a matching prefix, splitting honest mining by `γ`), or *wait*. The
//! fork qualifier is tracked exactly as in the MDP: *irrelevant* after a
//! pool block, *relevant* after an honest block, *active* while a
//! published match race is live. So is the published-prefix reference
//! distance `match_d` — fixed at the height of the epoch's first match,
//! cleared when the epoch settles — which four-axis Ethereum-model
//! artifacts consult as their fourth coordinate (classic tables ignore
//! it). Fallback semantics: any state outside the table's truncation —
//! and any action illegal in the live state — degrades to a forced
//! *adopt*. Table lookups are flat-array arithmetic; the playback hot path
//! allocates nothing beyond what the block tree itself needs.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

use seleth_chain::{BlockId, BlockTree, MinerId};
use seleth_mdp::{Action, Fork, StateSpace};
use seleth_obs::{EventKind, EventLog};

use crate::config::{PoolStrategy, SimConfig};
use crate::stats::SimReport;

/// Record one flight-recorder event if a log is attached. Free function so
/// call sites that have destructured `self` can still record; one branch
/// when no log (or a disabled log) is attached.
#[inline]
pub(crate) fn record_event(
    events: &Option<Arc<EventLog>>,
    kind: EventKind,
    actor: u32,
    a: u64,
    b: u64,
) {
    if let Some(log) = events {
        log.record(kind, actor, a, b);
    }
}

/// The miner id used for the selfish pool.
pub const POOL: MinerId = MinerId(0);

/// A running simulation. Construct with [`Simulation::new`], drive with
/// [`Simulation::run`] (or [`Simulation::step`] for fine-grained control).
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    rng: ChaCha12Rng,
    tree: BlockTree,
    published: Vec<bool>,
    // --- epoch state (everything above the last consensus block) ---
    /// Last consensus block; both branches fork from here.
    fork_base: BlockId,
    /// The pool's private chain above `fork_base`, oldest first.
    private: Vec<BlockId>,
    /// How many of `private` have been published.
    published_count: usize,
    /// The honest public branch above `fork_base`, oldest first.
    honest_branch: Vec<BlockId>,
    /// MDP fork qualifier, maintained by the policy-playback executor
    /// (the hand-coded strategies ignore it).
    fork: Fork,
    /// Published-prefix reference distance, maintained by the
    /// policy-playback executor exactly as in the MDP: 0 while no prefix
    /// of the private branch is public this epoch, otherwise the honest
    /// height at the epoch's *first* match (capped at [`seleth_mdp::MATCH_D_CAP`]),
    /// fixed until the epoch settles. Four-axis tables consult it.
    match_d: u8,
    // --- statistics ---
    blocks_mined: u64,
    state_visits: HashMap<(u32, u32), u64>,
    /// Optional flight recorder ([`Simulation::attach_events`]); `None`
    /// (the default) keeps every instrumentation site a single branch.
    events: Option<Arc<EventLog>>,
}

impl Simulation {
    /// Set up a simulation for `config`.
    pub fn new(config: SimConfig) -> Self {
        let tree = BlockTree::new();
        let rng = ChaCha12Rng::seed_from_u64(config.seed());
        let fork_base = tree.genesis();
        Simulation {
            config,
            rng,
            tree,
            published: vec![true], // genesis
            fork_base,
            private: Vec::new(),
            published_count: 0,
            honest_branch: Vec::new(),
            fork: Fork::Irrelevant,
            match_d: 0,
            blocks_mined: 0,
            state_visits: HashMap::new(),
            events: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Attach a flight recorder: every mined block, publication and policy
    /// decision is recorded as a canonical [`EventKind`] event. Recording
    /// only *reads* engine state (it never touches the RNG), so an
    /// attached — even enabled — log cannot change a run's results; the
    /// recorder survives [`Simulation::reset`] so reused engines keep
    /// recording across seeds.
    pub fn attach_events(&mut self, log: Arc<EventLog>) {
        self.events = Some(log);
    }

    /// Detach the flight recorder, restoring the zero-overhead path.
    pub fn detach_events(&mut self) -> Option<Arc<EventLog>> {
        self.events.take()
    }

    /// Re-arm this simulation for a fresh run under `config`, recycling the
    /// block-tree arena and bookkeeping vectors.
    ///
    /// Produces a state indistinguishable from `Simulation::new(config)`
    /// (same RNG stream, same empty tree) without reallocating, which is
    /// what lets [`crate::multi::run_many`] reuse one engine per worker
    /// across many seeds.
    pub fn reset(&mut self, config: SimConfig) {
        self.rng = ChaCha12Rng::seed_from_u64(config.seed());
        self.config = config;
        self.tree.reset();
        self.published.clear();
        self.published.push(true); // genesis
        self.fork_base = self.tree.genesis();
        self.private.clear();
        self.published_count = 0;
        self.honest_branch.clear();
        self.fork = Fork::Irrelevant;
        self.match_d = 0;
        self.blocks_mined = 0;
        self.state_visits.clear();
    }

    /// The current `(Ls, Lh)` state, for inspection and testing.
    pub fn state(&self) -> (u32, u32) {
        (self.private.len() as u32, self.honest_branch.len() as u32)
    }

    /// Borrow the block tree built so far.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// `true` if the block has been broadcast to the network.
    pub fn is_published(&self, id: BlockId) -> bool {
        self.published[id.index()]
    }

    /// Run to the configured block budget and produce the report.
    pub fn run(mut self) -> SimReport {
        self.run_in_place()
    }

    /// As [`Simulation::run`], but borrowing: afterwards the engine can be
    /// [`Simulation::reset`] and reused for another run.
    pub fn run_in_place(&mut self) -> SimReport {
        while self.blocks_mined < self.config.blocks() {
            self.step();
        }
        self.finalize_in_place()
    }

    /// Mine exactly one block (pool with probability `α`, honest
    /// otherwise) and apply the strategy updates. Under
    /// [`PoolStrategy::Table`] the pool's table action is applied *before*
    /// the block event, mirroring the MDP's decision order.
    pub fn step(&mut self) {
        if self.config.strategy() == PoolStrategy::Table {
            self.policy_act();
        }
        let pool_wins = self.rng.gen_bool(self.config.alpha());
        if pool_wins {
            match self.config.strategy() {
                PoolStrategy::Honest => self.honest_mines(POOL),
                PoolStrategy::Selfish | PoolStrategy::LeadStubborn => self.pool_mines(),
                PoolStrategy::Table => self.policy_pool_mines(),
            }
        } else {
            let id = MinerId(self.rng.gen_range(1..=self.config.n_honest()));
            match self.config.strategy() {
                PoolStrategy::Table => self.policy_honest_mines(id),
                _ => self.honest_mines(id),
            }
        }
        self.blocks_mined += 1;
        let s = self.state();
        *self.state_visits.entry(s).or_insert(0) += 1;
    }

    /// Finish: publish any remaining private blocks (what the pool would do
    /// when it stops attacking) and account the tree.
    pub fn finalize(mut self) -> SimReport {
        self.finalize_in_place()
    }

    fn finalize_in_place(&mut self) -> SimReport {
        self.publish_all_private();
        SimReport::from_simulation(
            &self.config,
            &self.tree,
            self.blocks_mined,
            std::mem::take(&mut self.state_visits),
        )
    }

    // ------------------------------------------------------------------
    // Pool behaviour (Algorithm 1, "the selfish pool mines a new block")
    // ------------------------------------------------------------------

    fn pool_mines(&mut self) {
        let parent = self.private.last().copied().unwrap_or(self.fork_base);
        let block = self.mint(parent, POOL);
        self.private.push(block);
        // Lines 3-5 of Algorithm 1: with (Ls, Lh) = (2, 1) the advantage is
        // too slim; publish and settle. This state is reachable only from
        // (1, 1). A Lead-Stubborn pool skips this concession and keeps the
        // new block private.
        if self.config.strategy() == PoolStrategy::Selfish
            && self.private.len() == 2
            && self.honest_branch.len() == 1
        {
            let tip = *self.private.last().expect("just pushed");
            self.publish_all_private();
            self.reset_epoch(tip);
        }
        // Otherwise: keep mining privately (lines 6-7).
    }

    // ------------------------------------------------------------------
    // Honest behaviour (protocol + Algorithm 1's reactions)
    // ------------------------------------------------------------------

    fn honest_mines(&mut self, miner: MinerId) {
        let ls = self.private.len();
        let lh = self.honest_branch.len();
        debug_assert!(
            lh == 0 || self.published_count == lh,
            "public branches must have equal length (published {} vs honest {lh})",
            self.published_count
        );

        // Parent selection: the longest public tip; on ties, the pool's
        // published branch with probability γ (the network model).
        let prefix_tip = (self.published_count > 0).then(|| self.private[self.published_count - 1]);
        let parent = match (prefix_tip, self.honest_branch.last()) {
            (Some(p), Some(&h)) => {
                if self.rng.gen_bool(self.config.gamma()) {
                    p
                } else {
                    h
                }
            }
            (None, Some(&h)) => h,
            (None, None) => self.fork_base,
            (Some(_), None) => unreachable!("pool publishes only in response to honest blocks"),
        };
        let on_prefix = Some(parent) == prefix_tip;

        let block = self.mint(parent, miner);
        self.publish(block);

        // Algorithm 1, lines 8-20, with Lh already incremented. The
        // Lead-Stubborn variant differs in exactly one place: it never
        // concedes a near-win by publishing the whole branch (lines 15-17);
        // it always reveals just enough to match the public chain.
        let stubborn = self.config.strategy() == PoolStrategy::LeadStubborn;
        let lh_inc = lh + 1;
        if ls < lh_inc {
            // Lines 10-12: the public chain is longer; everyone adopts it.
            // A stubborn pool may be abandoning withheld blocks here; under
            // Algorithm 1 there is never anything unpublished to discard.
            debug_assert!(
                stubborn || self.private.len() == self.published_count,
                "Algorithm 1 never abandons unpublished blocks"
            );
            self.reset_epoch(block);
        } else if ls == lh_inc + 1 && !stubborn {
            // Lines 15-17: lead of one left; publish everything and win.
            let tip = *self.private.last().expect("lead is positive");
            self.publish_all_private();
            self.reset_epoch(tip);
        } else {
            // Lines 13-14 (ls == lh_inc: reveal the last block, branches
            // tie) and lines 18-20 (comfortable lead: reveal the first
            // unpublished block) share the same mechanics: publish exactly
            // one more block. For the stubborn pool this branch also
            // handles ls == lh_inc + 1.
            self.published_count += 1;
            self.publish(self.private[self.published_count - 1]);
            if on_prefix {
                // The fork point moves up to the honest block's parent:
                // state (Ls − Lh + 1, 1) after the line-9 increment.
                let cut = lh; // blocks at or below the new fork base
                self.fork_base = parent;
                self.private.drain(..cut);
                self.published_count = 1;
                self.honest_branch.clear();
            }
            self.honest_branch.push(block);
        }
    }

    // ------------------------------------------------------------------
    // Policy playback (PoolStrategy::Table): execute an exported MDP
    // policy over the real block tree.
    // ------------------------------------------------------------------

    /// Consult the table at the live `(a, h, fork, match_d)` state and
    /// execute the prescribed action.
    ///
    /// Fallback semantics (both documented and tested): if the live state
    /// lies outside the table's truncation region, or the table prescribes
    /// an action that is illegal in the live state (override without a
    /// longer chain, match without a relevant length-`h ≥ 1` race), the
    /// pool performs a forced **adopt** — it concedes the epoch and
    /// returns to the table's covered region within one action. The
    /// resolution itself lives in [`seleth_mdp::PolicyTable::decide`], so
    /// every executor (this engine, the delay simulator's strategic
    /// miners) shares one decision procedure.
    fn policy_act(&mut self) {
        let table = self.config.policy().expect("Table strategy has a table");
        let a = self.private.len() as u32;
        let h = self.honest_branch.len() as u32;
        match table.decide(a, h, self.fork, self.match_d) {
            Action::Wait => {}
            Action::Adopt => self.policy_adopt(),
            Action::Override => self.policy_override(),
            Action::Match => self.policy_match(),
        }
    }

    /// *Adopt*: give up the private branch and mine on the honest tip.
    /// Unpublished private blocks are abandoned (they stay unpublished and
    /// settle as stale); an already-published prefix stays in the tree as
    /// an uncle candidate.
    fn policy_adopt(&mut self) {
        record_event(
            &self.events,
            EventKind::Adopt,
            POOL.0,
            self.private.len() as u64,
            self.honest_branch.len() as u64,
        );
        match self.honest_branch.last() {
            Some(&tip) => self.reset_epoch(tip),
            None => {
                // h = 0: nothing to adopt onto; just discard the private
                // branch. No prefix can be published at h = 0 (matching
                // requires an honest block), so nothing public is dropped.
                debug_assert_eq!(self.published_count, 0);
                self.private.clear();
                self.published_count = 0;
            }
        }
        self.fork = Fork::Irrelevant;
        self.match_d = 0;
    }

    /// *Override*: publish the first `h + 1` private blocks, orphaning the
    /// honest branch; the fork base moves to the last published block.
    fn policy_override(&mut self) {
        record_event(
            &self.events,
            EventKind::Override,
            POOL.0,
            self.private.len() as u64,
            self.honest_branch.len() as u64,
        );
        let h = self.honest_branch.len();
        debug_assert!(self.private.len() > h, "override needs a > h");
        for i in 0..=h {
            self.publish(self.private[i]);
        }
        let new_base = self.private[h];
        self.private.drain(..=h);
        self.published_count = 0;
        self.honest_branch.clear();
        self.fork_base = new_base;
        self.fork = Fork::Irrelevant;
        self.match_d = 0;
    }

    /// *Match*: publish a private prefix of length `h`, splitting the
    /// network between two equal-length public branches. The epoch's
    /// first match fixes the prefix's reference distance at the current
    /// honest height (the MDP's `match_d` semantics); re-matches — the
    /// progressive reveal — keep the original distance.
    fn policy_match(&mut self) {
        record_event(
            &self.events,
            EventKind::Match,
            POOL.0,
            self.private.len() as u64,
            self.honest_branch.len() as u64,
        );
        let h = self.honest_branch.len();
        debug_assert!(self.private.len() >= h && h >= 1);
        for i in self.published_count..h {
            self.publish(self.private[i]);
        }
        self.published_count = h;
        self.fork = Fork::Active;
        if self.match_d == 0 {
            self.match_d = StateSpace::first_match_d(h as u32);
        }
    }

    /// Pool block under playback: always mined privately (publication is
    /// the policy's job). A live match race stays active — the MDP's
    /// `α`-branch of the *match* dynamics.
    fn policy_pool_mines(&mut self) {
        let parent = self.private.last().copied().unwrap_or(self.fork_base);
        let block = self.mint(parent, POOL);
        self.private.push(block);
        if self.fork != Fork::Active {
            self.fork = Fork::Irrelevant;
        }
    }

    /// Honest block under playback. During an active race the miner picks
    /// the pool's published prefix with probability `γ` (resolving the
    /// race for the pool — the MDP's `γβ` branch); otherwise the honest
    /// branch simply grows and any race falls back to *relevant*.
    fn policy_honest_mines(&mut self, miner: MinerId) {
        if self.fork == Fork::Active {
            debug_assert_eq!(
                self.published_count,
                self.honest_branch.len(),
                "an active race is two equal-length public branches"
            );
            if self.rng.gen_bool(self.config.gamma()) {
                // The pool's h published blocks win the epoch; the honest
                // branch is orphaned and the new honest block starts the
                // next epoch on top of the prefix.
                let prefix_tip = self.private[self.published_count - 1];
                let block = self.mint(prefix_tip, miner);
                self.publish(block);
                let won = self.published_count;
                self.fork_base = prefix_tip;
                self.private.drain(..won);
                self.published_count = 0;
                self.honest_branch.clear();
                self.honest_branch.push(block);
                self.fork = Fork::Relevant;
                self.match_d = 0;
                return;
            }
        }
        let parent = self.honest_branch.last().copied().unwrap_or(self.fork_base);
        let block = self.mint(parent, miner);
        self.publish(block);
        self.honest_branch.push(block);
        self.fork = Fork::Relevant;
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    /// Create a block on `parent` with protocol-valid uncle references.
    fn mint(&mut self, parent: BlockId, miner: MinerId) -> BlockId {
        let refs = self.collect_uncle_refs(parent);
        let id = self
            .tree
            .add_block(parent, miner, &refs)
            .expect("engine only uses ids it created");
        self.published.push(false);
        record_event(
            &self.events,
            EventKind::Mine,
            miner.0,
            id.index() as u64,
            self.tree.height(id),
        );
        id
    }

    fn publish(&mut self, id: BlockId) {
        if !self.published[id.index()] {
            record_event(
                &self.events,
                EventKind::Release,
                self.tree.block(id).miner().0,
                id.index() as u64,
                self.tree.height(id),
            );
        }
        self.published[id.index()] = true;
    }

    fn publish_all_private(&mut self) {
        for i in self.published_count..self.private.len() {
            let id = self.private[i];
            self.publish(id);
        }
        self.published_count = self.private.len();
    }

    fn reset_epoch(&mut self, consensus_tip: BlockId) {
        self.fork_base = consensus_tip;
        self.private.clear();
        self.published_count = 0;
        self.honest_branch.clear();
    }

    /// Ethereum's uncle-reference rule, applied at mining time: reference
    /// every known (published) block `U` such that `U`'s parent is an
    /// ancestor of the new block within the maximum distance, `U` is not
    /// itself an ancestor, and no ancestor in the reference window already
    /// references `U` — up to the schedule's per-block cap.
    ///
    /// Miners never need to distinguish pool from honest visibility here:
    /// unpublished pool blocks are always ancestors of the pool's own next
    /// block, and ancestors are excluded anyway.
    fn collect_uncle_refs(&mut self, parent: BlockId) -> Vec<BlockId> {
        let schedule = self.config.schedule();
        let max_d = schedule.max_uncle_distance();
        if max_d == 0 {
            return Vec::new();
        }
        let cap = schedule.max_uncles_per_block().unwrap_or(usize::MAX);
        if cap == 0 {
            return Vec::new();
        }
        let new_height = self.tree.height(parent) + 1;

        // Ancestors of the new block within the window, newest first.
        let mut ancestors = Vec::with_capacity(max_d as usize + 1);
        let mut cur = parent;
        for _ in 0..=max_d {
            ancestors.push(cur);
            match self.tree.block(cur).parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
        let on_chain: HashSet<BlockId> = ancestors.iter().copied().collect();
        let referenced: HashSet<BlockId> = ancestors
            .iter()
            .flat_map(|&a| self.tree.block(a).uncle_refs().iter().copied())
            .collect();

        let mut refs = Vec::new();
        // Uncle parents sit at heights [new_height − 1 − max_d, new_height − 2].
        'outer: for &a in &ancestors[1..] {
            if new_height - self.tree.height(a) > max_d + 1 {
                break;
            }
            for &u in self.tree.children(a) {
                if on_chain.contains(&u) || referenced.contains(&u) || !self.published[u.index()] {
                    continue;
                }
                refs.push(u);
                if refs.len() >= cap {
                    break 'outer;
                }
            }
        }
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seleth_chain::RewardSchedule;

    fn sim(alpha: f64, gamma: f64, seed: u64) -> Simulation {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .n_honest(99)
            .blocks(u64::MAX) // stepped manually
            .seed(seed)
            .build()
            .unwrap();
        Simulation::new(config)
    }

    /// Drive the simulation with a scripted winner sequence by re-seeding
    /// is impractical; instead we call the private handlers directly.
    impl Simulation {
        fn force_pool(&mut self) {
            self.pool_mines();
            self.blocks_mined += 1;
        }
        fn force_honest(&mut self) {
            self.honest_mines(MinerId(1));
            self.blocks_mined += 1;
        }
        /// Scripted playback steps: decision point, then a forced winner.
        fn force_pool_policy(&mut self) {
            self.policy_act();
            self.policy_pool_mines();
            self.blocks_mined += 1;
        }
        fn force_honest_policy(&mut self) {
            self.policy_act();
            self.policy_honest_mines(MinerId(1));
            self.blocks_mined += 1;
        }
    }

    #[test]
    fn honest_only_chain_is_linear() {
        let mut s = sim(0.3, 0.5, 1);
        for _ in 0..10 {
            s.force_honest();
        }
        assert_eq!(s.state(), (0, 0));
        assert_eq!(s.tree().max_height(), 10);
        assert_eq!(s.tree().leaves().len(), 1);
    }

    #[test]
    fn pool_withholds_until_threat() {
        let mut s = sim(0.3, 0.5, 1);
        s.force_pool();
        assert_eq!(s.state(), (1, 0));
        s.force_pool();
        assert_eq!(s.state(), (2, 0));
        // The two private blocks are not published.
        let unpublished: Vec<_> = s
            .tree()
            .iter()
            .filter(|b| !b.is_genesis() && !s.is_published(b.id()))
            .collect();
        assert_eq!(unpublished.len(), 2);
    }

    #[test]
    fn lead_two_resolves_on_honest_block() {
        // (2,0) + honest block → pool publishes everything (Case 9).
        let mut s = sim(0.3, 0.5, 1);
        s.force_pool();
        s.force_pool();
        s.force_honest();
        assert_eq!(s.state(), (0, 0));
        // All blocks published; pool branch is the main chain.
        assert!(s.tree().iter().all(|b| s.is_published(b.id())));
        assert_eq!(s.tree().max_height(), 2);
    }

    #[test]
    fn tie_race_from_one_block_lead() {
        // (1,0) + honest → (1,1): both length-1 branches public.
        let mut s = sim(0.3, 0.5, 1);
        s.force_pool();
        s.force_honest();
        assert_eq!(s.state(), (1, 1));
        assert!(s.tree().iter().all(|b| s.is_published(b.id())));
        // Pool mines again: (2,1) → immediate full publication & reset.
        s.force_pool();
        assert_eq!(s.state(), (0, 0));
    }

    #[test]
    fn honest_resolution_of_tie_adopts() {
        let mut s = sim(0.3, 0.5, 1);
        s.force_pool();
        s.force_honest(); // (1,1)
        s.force_honest(); // race resolved by honest block
        assert_eq!(s.state(), (0, 0));
        assert_eq!(s.tree().max_height(), 2);
    }

    #[test]
    fn long_lead_publishes_one_by_one() {
        let mut s = sim(0.3, 0.5, 1);
        for _ in 0..5 {
            s.force_pool();
        }
        assert_eq!(s.state(), (5, 0));
        s.force_honest();
        assert_eq!(s.state(), (5, 1));
        assert_eq!(s.published_count, 1, "exactly one private block published");
        s.force_honest(); // γ decides prefix vs honest branch
        let (ls, lh) = s.state();
        assert!(
            (ls == 5 && lh == 2) || (ls == 4 && lh == 1),
            "case 7 or case 11, got ({ls},{lh})"
        );
    }

    #[test]
    fn uncle_references_created() {
        // Pool wins a 2-lead race; the honest loser is referenced by the
        // next block.
        let mut s = sim(0.3, 0.5, 1);
        s.force_pool();
        s.force_pool();
        s.force_honest(); // honest block orphaned at height 1
        s.force_honest(); // next honest block should reference it
        let with_refs: Vec<_> = s
            .tree()
            .iter()
            .filter(|b| !b.uncle_refs().is_empty())
            .collect();
        assert!(!with_refs.is_empty(), "the orphan must be referenced");
    }

    #[test]
    fn no_references_under_bitcoin_schedule() {
        let config = SimConfig::builder()
            .alpha(0.35)
            .schedule(RewardSchedule::bitcoin())
            .blocks(3_000)
            .seed(3)
            .build()
            .unwrap();
        let sim = Simulation::new(config);
        let report = sim.run();
        assert_eq!(report.reward_report.uncle_count, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let config = SimConfig::builder()
                .alpha(0.3)
                .blocks(2_000)
                .seed(seed)
                .build()
                .unwrap();
            let r = Simulation::new(config).run();
            (
                r.reward_report.regular_count,
                r.reward_report.uncle_count,
                r.pool.total(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn honest_pool_strategy_creates_no_forks() {
        let config = SimConfig::builder()
            .alpha(0.4)
            .strategy(PoolStrategy::Honest)
            .blocks(5_000)
            .seed(17)
            .build()
            .unwrap();
        let report = Simulation::new(config).run();
        assert_eq!(report.reward_report.regular_count, 5_000);
        assert_eq!(report.reward_report.uncle_count, 0);
        assert_eq!(report.reward_report.stale_count, 0);
        // Fair share: binomial(5000, 0.4)/5000 stays within ~4σ of 0.4.
        let share = report.relative_pool_share();
        assert!((share - 0.4).abs() < 0.03, "honest pool share {share}");
    }

    #[test]
    fn stubborn_pool_skips_the_two_one_concession() {
        let mut s = sim(0.3, 0.5, 1);
        s.config = SimConfig::builder()
            .alpha(0.3)
            .gamma(0.5)
            .n_honest(99)
            .blocks(u64::MAX)
            .strategy(PoolStrategy::LeadStubborn)
            .seed(1)
            .build()
            .unwrap();
        s.force_pool();
        s.force_honest(); // (1,1)
        s.force_pool(); // selfish would publish-and-reset; stubborn holds
        assert_eq!(s.state(), (2, 1));
    }

    #[test]
    fn stubborn_never_concedes_at_lead_one() {
        let config = SimConfig::builder()
            .alpha(0.3)
            .gamma(0.5)
            .n_honest(99)
            .blocks(u64::MAX)
            .strategy(PoolStrategy::LeadStubborn)
            .seed(1)
            .build()
            .unwrap();
        let mut s = Simulation::new(config);
        s.force_pool();
        s.force_pool(); // (2,0)
        s.force_honest(); // selfish: publish all, reset; stubborn: match one
        assert_eq!(s.state(), (2, 1));
        s.force_honest(); // match again → full tie (2,2)
        let (ls, lh) = s.state();
        assert!(
            (ls == 2 && lh == 2) || (ls == 1 && lh == 1),
            "tie or rebased tie, got ({ls},{lh})"
        );
    }

    #[test]
    fn stubborn_runs_account_consistently() {
        let config = SimConfig::builder()
            .alpha(0.4)
            .gamma(0.5)
            .strategy(PoolStrategy::LeadStubborn)
            .blocks(20_000)
            .n_honest(100)
            .seed(3)
            .build()
            .unwrap();
        let report = Simulation::new(config).run();
        assert_eq!(report.reward_report.block_count(), 20_000);
        let (reg, unc, stale) = report.block_type_fractions();
        assert!((reg + unc + stale - 1.0).abs() < 1e-12);
        assert!(unc > 0.0, "stubborn racing should orphan blocks");
    }

    fn table_sim(table: seleth_mdp::PolicyTable, alpha: f64, gamma: f64, seed: u64) -> Simulation {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .n_honest(99)
            .blocks(u64::MAX) // stepped manually
            .seed(seed)
            .policy(table)
            .build()
            .unwrap();
        Simulation::new(config)
    }

    /// A table that always waits (adopting only where wait is absent from
    /// the artifact, i.e. outside truncation via fallback).
    fn all_wait_table(max_len: u32) -> seleth_mdp::PolicyTable {
        seleth_mdp::PolicyTable::from_fn3(
            0.3,
            0.5,
            seleth_mdp::RewardModel::Bitcoin,
            seleth_chain::Scenario::RegularRate,
            max_len,
            0.3,
            |_, _, _| Action::Wait,
        )
    }

    #[test]
    fn playback_override_settles_the_lead() {
        // Sapirshtein-style: wait at (1,0) and (2,0); override once honest
        // catches up. Encode just that far and rely on fallback elsewhere.
        let table = seleth_mdp::PolicyTable::from_fn3(
            0.3,
            0.5,
            seleth_mdp::RewardModel::Bitcoin,
            seleth_chain::Scenario::RegularRate,
            8,
            0.3,
            |a, h, _| {
                if a > h {
                    if h >= 1 {
                        Action::Override
                    } else {
                        Action::Wait
                    }
                } else {
                    Action::Adopt
                }
            },
        );
        let mut s = table_sim(table, 0.3, 0.5, 1);
        s.force_pool_policy();
        s.force_pool_policy();
        assert_eq!(s.state(), (2, 0), "leads are held privately");
        s.force_honest_policy();
        assert_eq!(s.state(), (2, 1));
        // Next decision point (before any further block) overrides: the
        // two pool blocks publish and the honest block is orphaned.
        s.policy_act();
        assert_eq!(s.state(), (0, 0), "override settled the epoch");
        assert_eq!(s.tree().max_height(), 2);
        assert!(s.tree().iter().all(|b| s.is_published(b.id())));
    }

    #[test]
    fn playback_match_splits_and_gamma_resolves() {
        // Always match when possible, γ = 1: every honest block after a
        // match mines on the pool's prefix, handing the pool the epoch.
        let table = seleth_mdp::PolicyTable::from_fn3(
            0.3,
            1.0,
            seleth_mdp::RewardModel::Bitcoin,
            seleth_chain::Scenario::RegularRate,
            8,
            0.3,
            |a, h, fork| {
                if fork == Fork::Relevant && a >= h && h >= 1 {
                    Action::Match
                } else if a > h || h == 0 {
                    Action::Wait
                } else {
                    Action::Adopt
                }
            },
        );
        let mut s = table_sim(table, 0.3, 1.0, 1);
        s.force_pool_policy(); // (1,0) private
        s.force_honest_policy(); // (1,1) relevant
        assert_eq!(s.state(), (1, 1));
        // The next decision matches (prefix published), and the honest
        // block mines on the prefix with probability γ = 1: pool wins.
        s.force_honest_policy();
        assert_eq!(s.state(), (0, 1), "γβ outcome: pool block won, new epoch");
        // The pool's block is on the main chain.
        assert_eq!(s.tree().max_height(), 2);
    }

    #[test]
    fn playback_fallback_forces_adopt_outside_truncation() {
        // An all-wait table truncated at 3: the executor forces adopt the
        // moment either chain reaches the boundary — the solver's own
        // boundary rule — so the live state never leaves the truncated
        // region at all.
        let mut s = table_sim(all_wait_table(3), 0.3, 0.5, 7);
        for _ in 0..2_000 {
            s.step();
        }
        let (max_a, max_h) = s
            .state_visits
            .keys()
            .fold((0, 0), |(ma, mh), &(a, h)| (ma.max(a), mh.max(h)));
        assert!(
            max_a <= 3,
            "private branch must adopt at the boundary: {max_a}"
        );
        assert!(
            max_h <= 3,
            "honest branch must be adopted at the boundary: {max_h}"
        );
        // Adopt abandons unpublished blocks: they settle as stale.
        let report = s.finalize();
        assert!(report.reward_report.stale_count > 0);
    }

    #[test]
    fn boundary_fallback_is_bit_identical_to_an_explicitly_resolved_table() {
        // Regression for the truncation-boundary reconciliation: a table
        // whose boundary slots still say "wait" and the same table with
        // those slots explicitly resolved to the solver's boundary rule
        // must replay bit-for-bit identically — proof the executor's
        // runtime fallback *is* the solver's forced resolution, not one
        // slot later.
        let resolved = seleth_mdp::PolicyTable::from_fn3(
            0.3,
            0.5,
            seleth_mdp::RewardModel::Bitcoin,
            seleth_chain::Scenario::RegularRate,
            3,
            0.3,
            |a, h, _| {
                if a >= 3 || h >= 3 {
                    Action::Adopt
                } else {
                    Action::Wait
                }
            },
        );
        assert!(resolved.is_legal_everywhere());
        let mut implicit = table_sim(all_wait_table(3), 0.3, 0.5, 7);
        let mut explicit = table_sim(resolved, 0.3, 0.5, 7);
        for _ in 0..2_000 {
            implicit.step();
            explicit.step();
        }
        // The walk genuinely reaches the boundary in this run...
        assert!(
            implicit.state_visits.keys().any(|&(a, h)| a == 3 || h == 3),
            "strategist never reached the truncation boundary"
        );
        // ...and both tables traced exactly the same trajectory.
        assert_eq!(implicit.state_visits, explicit.state_visits);
        let (ri, re) = (implicit.finalize(), explicit.finalize());
        assert_eq!(
            ri.reward_report.miner(POOL).total().to_bits(),
            re.reward_report.miner(POOL).total().to_bits()
        );
        assert_eq!(ri.reward_report.stale_count, re.reward_report.stale_count);
    }

    #[test]
    fn playback_illegal_actions_degrade_to_adopt() {
        // A malicious/corrupt table prescribing override everywhere: with
        // a = 0 ≤ h the override is illegal and must degrade to adopt
        // rather than panic.
        let table = seleth_mdp::PolicyTable::from_fn3(
            0.3,
            0.5,
            seleth_mdp::RewardModel::Bitcoin,
            seleth_chain::Scenario::RegularRate,
            6,
            0.3,
            |_, _, _| Action::Override,
        );
        let mut s = table_sim(table, 0.3, 0.5, 3);
        for _ in 0..500 {
            s.step();
        }
        let report = s.finalize();
        assert!(report.reward_report.block_count() >= 500);
    }

    #[test]
    fn playback_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = table_sim(all_wait_table(6), 0.35, 0.5, seed);
            for _ in 0..3_000 {
                s.step();
            }
            let r = s.finalize();
            (r.pool.total(), r.reward_report.regular_count)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn alpha_zero_never_mines_pool_blocks() {
        let config = SimConfig::builder()
            .alpha(0.0)
            .blocks(1_000)
            .seed(9)
            .build()
            .unwrap();
        let report = Simulation::new(config).run();
        assert_eq!(report.pool.total(), 0.0);
        assert_eq!(report.reward_report.regular_count, 1_000);
        assert_eq!(
            report.reward_report.stale_count + report.reward_report.uncle_count,
            0
        );
    }
}
