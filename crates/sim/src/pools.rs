//! Ethereum mining-pool hash-power shares (Fig. 6 of the paper,
//! etherscan.io snapshot from September 2018).
//!
//! The paper motivates the study with the observation that real Ethereum
//! pools are large enough to cross the profitability thresholds derived in
//! Section IV — the top pool alone held more than 26% of total hash power.
//! The original web endpoint is gone; the values are embedded from the
//! paper itself (our DESIGN.md records this substitution).

/// Hash-power share of one mining pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolShare {
    /// Pool name as reported by etherscan.
    pub name: &'static str,
    /// Fraction of total network hash power, in `[0, 1]`.
    pub share: f64,
}

/// The Fig. 6 dataset: top-5 Ethereum pools plus the aggregated remainder
/// (2018-09).
pub const TOP_POOLS_2018: &[PoolShare] = &[
    PoolShare {
        name: "Ethermine",
        share: 0.2634,
    },
    PoolShare {
        name: "SparkPool",
        share: 0.2246,
    },
    PoolShare {
        name: "F2Pool",
        share: 0.1337,
    },
    PoolShare {
        name: "Nanopool",
        share: 0.1033,
    },
    PoolShare {
        name: "MiningPoolHub",
        share: 0.0878,
    },
    PoolShare {
        name: "Others",
        share: 0.1872,
    },
];

/// Combined hash power of the top `n` named pools (excludes "Others").
///
/// The paper highlights: top-2 ≈ 48.8%, top-5 > 81%.
///
/// ```
/// use seleth_sim::pools::combined_top_share;
/// assert!((combined_top_share(2) - 0.488).abs() < 1e-9);
/// assert!(combined_top_share(5) > 0.81);
/// ```
pub fn combined_top_share(n: usize) -> f64 {
    TOP_POOLS_2018
        .iter()
        .filter(|p| p.name != "Others")
        .take(n)
        .map(|p| p.share)
        .sum()
}

/// The Fig. 6 distribution as a share vector (Ethermine first), in the
/// exact form [`crate::delay::DelayConfigBuilder::shares`] accepts.
///
/// ```
/// use seleth_sim::pools::share_vector;
/// let v = share_vector();
/// assert_eq!(v.len(), 6);
/// assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn share_vector() -> Vec<f64> {
    TOP_POOLS_2018.iter().map(|p| p.share).collect()
}

/// A delay-study split with a strategic pool of size `alpha` in front: the
/// remaining `1 − alpha` of hash power is distributed across the Fig. 6
/// pool landscape, scaled proportionally. Entry 0 is the strategist; the
/// result is a valid probability distribution for
/// [`crate::delay::DelayConfigBuilder::shares`].
///
/// ```
/// use seleth_sim::pools::shares_with_strategist;
/// let v = shares_with_strategist(0.35);
/// assert_eq!(v.len(), 7);
/// assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// assert_eq!(v[0], 0.35);
/// ```
pub fn shares_with_strategist(alpha: f64) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&alpha),
        "strategist share must be in [0, 1), got {alpha}"
    );
    let total: f64 = TOP_POOLS_2018.iter().map(|p| p.share).sum();
    let rest = 1.0 - alpha;
    let mut shares = Vec::with_capacity(TOP_POOLS_2018.len() + 1);
    shares.push(alpha);
    shares.extend(TOP_POOLS_2018.iter().map(|p| p.share / total * rest));
    shares
}

/// Herfindahl–Hirschman concentration index of the pool distribution
/// (treating "Others" as a single participant — an upper bound on
/// decentralization, lower bound on concentration).
pub fn concentration_index() -> f64 {
    TOP_POOLS_2018.iter().map(|p| p.share * p.share).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = TOP_POOLS_2018.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn paper_headline_numbers() {
        assert!((TOP_POOLS_2018[0].share - 0.2634).abs() < 1e-12);
        assert!((combined_top_share(2) - 0.488).abs() < 1e-6);
        assert!(combined_top_share(5) > 0.81);
    }

    #[test]
    fn every_named_pool_crosses_the_gamma_half_threshold() {
        // Section VI: the scenario-1 threshold at γ = 0.5 under Ku(·) is
        // α* ≈ 0.054 — every top-5 pool exceeds it.
        for p in TOP_POOLS_2018.iter().filter(|p| p.name != "Others") {
            assert!(p.share > 0.054, "{} at {}", p.name, p.share);
        }
    }

    #[test]
    fn strategist_splits_are_distributions() {
        for alpha in [0.0, 0.2634, 0.35, 0.45] {
            let v = shares_with_strategist(alpha);
            assert_eq!(v.len(), TOP_POOLS_2018.len() + 1);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|s| *s >= 0.0));
            assert_eq!(v[0], alpha);
            // The honest landscape keeps its relative ordering.
            assert!(v[1] > v[2] && v[2] > v[3]);
        }
    }

    #[test]
    fn concentration_is_meaningful() {
        let hhi = concentration_index();
        assert!(hhi > 0.15 && hhi < 0.25, "hhi = {hhi}");
    }
}
