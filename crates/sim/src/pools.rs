//! Ethereum mining-pool hash-power shares (Fig. 6 of the paper,
//! etherscan.io snapshot from September 2018).
//!
//! The paper motivates the study with the observation that real Ethereum
//! pools are large enough to cross the profitability thresholds derived in
//! Section IV — the top pool alone held more than 26% of total hash power.
//! The original web endpoint is gone; the values are embedded from the
//! paper itself (our DESIGN.md records this substitution).

/// Hash-power share of one mining pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolShare {
    /// Pool name as reported by etherscan.
    pub name: &'static str,
    /// Fraction of total network hash power, in `[0, 1]`.
    pub share: f64,
}

/// The Fig. 6 dataset: top-5 Ethereum pools plus the aggregated remainder
/// (2018-09).
pub const TOP_POOLS_2018: &[PoolShare] = &[
    PoolShare {
        name: "Ethermine",
        share: 0.2634,
    },
    PoolShare {
        name: "SparkPool",
        share: 0.2246,
    },
    PoolShare {
        name: "F2Pool",
        share: 0.1337,
    },
    PoolShare {
        name: "Nanopool",
        share: 0.1033,
    },
    PoolShare {
        name: "MiningPoolHub",
        share: 0.0878,
    },
    PoolShare {
        name: "Others",
        share: 0.1872,
    },
];

/// Combined hash power of the top `n` named pools (excludes "Others").
///
/// The paper highlights: top-2 ≈ 48.8%, top-5 > 81%.
///
/// ```
/// use seleth_sim::pools::combined_top_share;
/// assert!((combined_top_share(2) - 0.488).abs() < 1e-9);
/// assert!(combined_top_share(5) > 0.81);
/// ```
pub fn combined_top_share(n: usize) -> f64 {
    TOP_POOLS_2018
        .iter()
        .filter(|p| p.name != "Others")
        .take(n)
        .map(|p| p.share)
        .sum()
}

/// Herfindahl–Hirschman concentration index of the pool distribution
/// (treating "Others" as a single participant — an upper bound on
/// decentralization, lower bound on concentration).
pub fn concentration_index() -> f64 {
    TOP_POOLS_2018.iter().map(|p| p.share * p.share).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = TOP_POOLS_2018.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn paper_headline_numbers() {
        assert!((TOP_POOLS_2018[0].share - 0.2634).abs() < 1e-12);
        assert!((combined_top_share(2) - 0.488).abs() < 1e-6);
        assert!(combined_top_share(5) > 0.81);
    }

    #[test]
    fn every_named_pool_crosses_the_gamma_half_threshold() {
        // Section VI: the scenario-1 threshold at γ = 0.5 under Ku(·) is
        // α* ≈ 0.054 — every top-5 pool exceeds it.
        for p in TOP_POOLS_2018.iter().filter(|p| p.name != "Others") {
            assert!(p.share > 0.054, "{} at {}", p.name, p.share);
        }
    }

    #[test]
    fn concentration_is_meaningful() {
        let hhi = concentration_index();
        assert!(hhi > 0.15 && hhi < 0.25, "hhi = {hhi}");
    }
}
