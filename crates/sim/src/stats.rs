//! Post-run accounting: from a finished block tree to the paper's revenue
//! metrics.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seleth_chain::accounting::{self, MinerRewards};
use seleth_chain::classify;
use seleth_chain::forkchoice::{longest_chain, TieBreak};
use seleth_chain::{BlockTree, Scenario};

use crate::config::SimConfig;
use crate::engine::POOL;

/// The outcome of one simulation run.
///
/// Block-type counts and reward tallies come from
/// [`seleth_chain::accounting`] over the final tree; the revenue accessors
/// mirror [`seleth-core`'s analytical breakdown] so theory and simulation
/// can be compared field by field.
///
/// [`seleth-core`'s analytical breakdown]: https://docs.rs/seleth-core
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Pool hash power the run was configured with.
    pub alpha: f64,
    /// Tie-breaking parameter the run was configured with.
    pub gamma: f64,
    /// Total blocks mined (all types, excluding genesis).
    pub blocks_mined: u64,
    /// Full per-miner accounting of the final tree.
    pub reward_report: accounting::RewardReport,
    /// Aggregated pool rewards.
    pub pool: MinerRewards,
    /// Aggregated honest rewards (all non-pool miners).
    pub honest: MinerRewards,
    /// Histogram of *honest* uncles by reference distance (`d − 1` indexed).
    pub honest_uncle_histogram: Vec<u64>,
    /// Histogram of *pool* uncles by reference distance (`d − 1` indexed).
    pub pool_uncle_histogram: Vec<u64>,
    /// Empirical visit counts of the `(Ls, Lh)` strategy state after each
    /// block event.
    pub state_visits: HashMap<(u32, u32), u64>,
}

impl SimReport {
    /// Account a finished simulation tree.
    pub(crate) fn from_simulation(
        config: &SimConfig,
        tree: &BlockTree,
        blocks_mined: u64,
        state_visits: HashMap<(u32, u32), u64>,
    ) -> Self {
        let schedule = config.schedule();
        let chain = longest_chain(tree, TieBreak::FirstSeen);
        let events = classify::uncle_events_with_cap(
            tree,
            &chain,
            schedule.max_uncle_distance(),
            schedule.max_uncles_per_block(),
        );
        let reward_report = accounting::account_with_events(tree, &chain, schedule, &events);

        let max_d = schedule.max_uncle_distance().max(1) as usize;
        let mut honest_hist = vec![0u64; max_d];
        let mut pool_hist = vec![0u64; max_d];
        for ev in &events {
            let hist = if tree.block(ev.uncle).miner() == POOL {
                &mut pool_hist
            } else {
                &mut honest_hist
            };
            hist[ev.distance as usize - 1] += 1;
        }

        let pool = reward_report.miner(POOL);
        let honest = reward_report
            .per_miner
            .iter()
            .filter(|(&id, _)| id != POOL)
            .fold(MinerRewards::default(), |mut acc, (_, m)| {
                acc.static_reward += m.static_reward;
                acc.uncle_reward += m.uncle_reward;
                acc.nephew_reward += m.nephew_reward;
                acc.regular_blocks += m.regular_blocks;
                acc.uncle_blocks += m.uncle_blocks;
                acc.stale_blocks += m.stale_blocks;
                acc
            });

        SimReport {
            alpha: config.alpha(),
            gamma: config.gamma(),
            blocks_mined,
            reward_report,
            pool,
            honest,
            honest_uncle_histogram: honest_hist,
            pool_uncle_histogram: pool_hist,
            state_visits,
        }
    }

    /// Normalization divisor for absolute revenue under `scenario`
    /// (regular blocks, or regular + uncle blocks).
    pub fn normalization(&self, scenario: Scenario) -> f64 {
        let r = self.reward_report.regular_count as f64;
        match scenario {
            Scenario::RegularRate => r,
            Scenario::RegularPlusUncleRate => r + self.reward_report.uncle_count as f64,
        }
    }

    /// The pool's measured absolute revenue `U_s`: total pool reward per
    /// normalized block slot — the simulated analogue of the analytical
    /// `U_s = (r_b^s + r_u^s + r_n^s) / (r_b^s + r_b^h)` (Eq. (11)), since
    /// dividing reward *rates* equals dividing run totals.
    pub fn absolute_pool(&self, scenario: Scenario) -> f64 {
        self.pool.total() / self.normalization(scenario)
    }

    /// Honest miners' measured absolute revenue `U_h` (Eq. (12)).
    pub fn absolute_honest(&self, scenario: Scenario) -> f64 {
        self.honest.total() / self.normalization(scenario)
    }

    /// System-wide measured absolute revenue (the "Total" of Fig. 9).
    pub fn absolute_total(&self, scenario: Scenario) -> f64 {
        self.absolute_pool(scenario) + self.absolute_honest(scenario)
    }

    /// The pool's relative share `R_s` of all rewards paid.
    pub fn relative_pool_share(&self) -> f64 {
        let total = self.pool.total() + self.honest.total();
        if total > 0.0 {
            self.pool.total() / total
        } else {
            0.0
        }
    }

    /// Empirical honest uncle reference-distance distribution (Table II):
    /// normalized histogram.
    pub fn honest_distance_distribution(&self) -> Vec<f64> {
        let total: u64 = self.honest_uncle_histogram.iter().sum();
        if total == 0 {
            return vec![0.0; self.honest_uncle_histogram.len()];
        }
        self.honest_uncle_histogram
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Mean honest uncle reference distance (Table II "Expectation").
    pub fn honest_distance_expectation(&self) -> f64 {
        self.honest_distance_distribution()
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Empirical probability of an `(Ls, Lh)` state over the run.
    pub fn state_frequency(&self, ls: u32, lh: u32) -> f64 {
        let total: u64 = self.state_visits.values().sum();
        if total == 0 {
            return 0.0;
        }
        self.state_visits.get(&(ls, lh)).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Fraction of produced blocks that ended up regular / uncle / stale.
    pub fn block_type_fractions(&self) -> (f64, f64, f64) {
        let n = self.reward_report.block_count().max(1) as f64;
        (
            self.reward_report.regular_count as f64 / n,
            self.reward_report.uncle_count as f64 / n,
            self.reward_report.stale_count as f64 / n,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulation};

    fn report(alpha: f64, gamma: f64) -> SimReport {
        let config = SimConfig::builder()
            .alpha(alpha)
            .gamma(gamma)
            .blocks(30_000)
            .n_honest(200)
            .seed(11)
            .build()
            .unwrap();
        Simulation::new(config).run()
    }

    #[test]
    fn counts_are_consistent() {
        let r = report(0.35, 0.5);
        assert_eq!(r.blocks_mined, 30_000);
        // Genesis excluded; a trailing private branch may add a few blocks
        // beyond the budget at finalization, never more than the last lead.
        assert!(r.reward_report.block_count() >= 30_000);
        assert!(r.reward_report.block_count() <= 30_000 + 50);
        let (reg, unc, stale) = r.block_type_fractions();
        assert!((reg + unc + stale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn honest_miner_count_matches() {
        let r = report(0.3, 0.5);
        assert!(r.pool.regular_blocks > 0);
        assert!(r.honest.regular_blocks > 0);
        assert_eq!(
            r.pool.regular_blocks + r.honest.regular_blocks,
            r.reward_report.regular_count
        );
    }

    #[test]
    fn state_frequencies_normalized() {
        let r = report(0.3, 0.5);
        let total: f64 = r
            .state_visits
            .keys()
            .map(|&(a, b)| r.state_frequency(a, b))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        // (0,0) is the most visited state at moderate alpha.
        assert!(r.state_frequency(0, 0) > 0.3);
    }

    #[test]
    fn distance_distribution_sums_to_one_when_uncles_exist() {
        let r = report(0.4, 0.5);
        assert!(r.reward_report.uncle_count > 0);
        let pmf = r.honest_distance_distribution();
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(r.honest_distance_expectation() >= 1.0);
    }

    #[test]
    fn pool_uncles_all_at_distance_one() {
        // Remark 5 of the paper, observed empirically.
        let r = report(0.35, 0.5);
        let total: u64 = r.pool_uncle_histogram.iter().sum();
        assert!(total > 0, "pool should lose some blocks as uncles");
        assert_eq!(
            r.pool_uncle_histogram[0], total,
            "{:?}",
            r.pool_uncle_histogram
        );
    }

    #[test]
    fn scenario2_divisor_not_smaller() {
        let r = report(0.4, 0.5);
        assert!(
            r.normalization(Scenario::RegularPlusUncleRate)
                >= r.normalization(Scenario::RegularRate)
        );
        assert!(
            r.absolute_pool(Scenario::RegularPlusUncleRate)
                <= r.absolute_pool(Scenario::RegularRate)
        );
    }
}
