use std::error::Error;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use seleth_chain::RewardSchedule;
use seleth_mdp::PolicyTable;

/// Error raised by [`SimConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// `alpha` must lie in `[0, 1)` (the pool must not own everything).
    InvalidAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// `gamma` must lie in `[0, 1]`.
    InvalidGamma {
        /// The rejected value.
        gamma: f64,
    },
    /// At least one honest miner is required.
    NoHonestMiners,
    /// A run must produce at least one block.
    NoBlocks,
    /// [`PoolStrategy::Table`] requires a policy table (and vice versa).
    PolicyMismatch,
    /// A delay-study share vector must be a probability distribution:
    /// every share finite and non-negative, summing to 1 (the
    /// [`crate::pools`] helpers produce exactly that). Raised instead of
    /// silently renormalizing, so typos in hand-written splits fail loudly.
    InvalidShares {
        /// Sum of the rejected share vector (NaN if a share was NaN).
        total: f64,
    },
    /// The delay-study strategy vector must assign exactly one strategy
    /// per miner.
    StrategyCount {
        /// Number of miners (length of the share vector).
        miners: usize,
        /// Number of strategies supplied.
        strategies: usize,
    },
    /// A fault plan is malformed: a rate outside `[0, 1]`, a degenerate
    /// backoff or churn parameter, a malformed or overlapping window, or
    /// a miner index / partition group vector that disagrees with the
    /// share vector (see [`crate::faults::FaultPlan`]).
    InvalidFaultPlan {
        /// What was wrong with the plan.
        reason: String,
    },
    /// A propagation topology disagrees with the run's share vector (see
    /// `seleth_net::Topology`).
    InvalidTopology {
        /// What was wrong with the topology.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidAlpha { alpha } => {
                write!(f, "alpha must be in [0, 1), got {alpha}")
            }
            SimError::InvalidGamma { gamma } => {
                write!(f, "gamma must be in [0, 1], got {gamma}")
            }
            SimError::NoHonestMiners => write!(f, "at least one honest miner is required"),
            SimError::NoBlocks => write!(f, "block budget must be positive"),
            SimError::PolicyMismatch => write!(
                f,
                "the Table strategy and a policy table must be set together \
                 (use SimConfigBuilder::policy)"
            ),
            SimError::InvalidShares { total } => write!(
                f,
                "shares must be finite, non-negative and sum to 1, got a sum of {total}"
            ),
            SimError::StrategyCount { miners, strategies } => write!(
                f,
                "expected one strategy per miner ({miners} miners, {strategies} strategies)"
            ),
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::InvalidTopology { reason } => {
                write!(f, "invalid propagation topology: {reason}")
            }
        }
    }
}

impl Error for SimError {}

/// The strategy run by the pool's hash power.
///
/// [`PoolStrategy::Selfish`] is the paper's Algorithm 1. The other two are
/// extensions: an honest baseline (the pool follows the protocol — useful
/// for validating that the simulator awards exactly fair shares without an
/// attack), and Lead-Stubborn mining (Nayak et al., EuroS&P 2016) adapted
/// to Ethereum rewards — the kind of "new mining strategy" the paper's
/// conclusion proposes studying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PoolStrategy {
    /// Algorithm 1 of the paper (Eyal–Sirer-style withholding with
    /// Ethereum uncle referencing).
    #[default]
    Selfish,
    /// The pool follows the protocol like everyone else.
    Honest,
    /// Lead-Stubborn: never concede a race by publishing the whole branch;
    /// when honest miners catch up, reveal only the matching block and
    /// keep mining on the private branch. Gives up only when the public
    /// chain is strictly longer.
    LeadStubborn,
    /// Replay an exported MDP policy artifact
    /// ([`seleth_mdp::PolicyTable`]): the pool consults the table before
    /// every block event and executes the prescribed
    /// adopt/override/match/wait over the real block tree. Set via
    /// [`SimConfigBuilder::policy`], which installs the table alongside
    /// this marker.
    Table,
}

/// Configuration of one simulation run.
///
/// Defaults follow the paper's setup (Section V): `n = 1000` miners with
/// equal block-generation rates (999 honest plus the pool), 100,000 blocks
/// per run, γ = 0.5 and the Ethereum reward schedule.
///
/// ```
/// use seleth_sim::SimConfig;
/// let c = SimConfig::builder().alpha(0.45).build().unwrap();
/// assert_eq!(c.alpha(), 0.45);
/// assert_eq!(c.blocks(), 100_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    alpha: f64,
    gamma: f64,
    n_honest: u32,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
    strategy: PoolStrategy,
    /// Shared so that cloning per seed (`with_seed` in `multi::run_many`)
    /// never copies the action arrays.
    policy: Option<Arc<PolicyTable>>,
}

impl SimConfig {
    /// Start building a configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Pool hash-power fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Tie-breaking parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of distinct honest miners (ids `1..=n_honest`).
    pub fn n_honest(&self) -> u32 {
        self.n_honest
    }

    /// Number of blocks mined per run.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The reward schedule in force.
    pub fn schedule(&self) -> &RewardSchedule {
        &self.schedule
    }

    /// The strategy run by the pool.
    pub fn strategy(&self) -> PoolStrategy {
        self.strategy
    }

    /// The policy table replayed by [`PoolStrategy::Table`] (`None` for
    /// the hand-coded strategies).
    pub fn policy(&self) -> Option<&PolicyTable> {
        self.policy.as_deref()
    }

    /// A copy with a different seed (used for multi-run averaging).
    pub fn with_seed(&self, seed: u64) -> Self {
        SimConfig {
            seed,
            ..self.clone()
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    alpha: f64,
    gamma: f64,
    n_honest: u32,
    blocks: u64,
    seed: u64,
    schedule: RewardSchedule,
    strategy: PoolStrategy,
    policy: Option<Arc<PolicyTable>>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            alpha: 0.3,
            gamma: 0.5,
            n_honest: 999,
            blocks: 100_000,
            seed: 0,
            schedule: RewardSchedule::ethereum(),
            strategy: PoolStrategy::Selfish,
            policy: None,
        }
    }
}

impl SimConfigBuilder {
    /// Set the pool's hash-power fraction `α`.
    pub fn alpha(&mut self, alpha: f64) -> &mut Self {
        self.alpha = alpha;
        self
    }

    /// Set the tie-breaking parameter `γ`.
    pub fn gamma(&mut self, gamma: f64) -> &mut Self {
        self.gamma = gamma;
        self
    }

    /// Set the number of honest miners.
    pub fn n_honest(&mut self, n: u32) -> &mut Self {
        self.n_honest = n;
        self
    }

    /// Set the number of blocks to mine.
    pub fn blocks(&mut self, blocks: u64) -> &mut Self {
        self.blocks = blocks;
        self
    }

    /// Set the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Set the reward schedule.
    pub fn schedule(&mut self, schedule: RewardSchedule) -> &mut Self {
        self.schedule = schedule;
        self
    }

    /// Set the pool's strategy.
    pub fn strategy(&mut self, strategy: PoolStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Have the pool replay `table` ([`PoolStrategy::Table`]). Implies
    /// `strategy(PoolStrategy::Table)`.
    pub fn policy(&mut self, table: PolicyTable) -> &mut Self {
        self.policy = Some(Arc::new(table));
        self.strategy = PoolStrategy::Table;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `alpha ∉ [0, 1)`, `gamma ∉ [0, 1]`, there
    /// are no honest miners, the block budget is zero, or exactly one of
    /// [`PoolStrategy::Table`] / a policy table is set.
    pub fn build(&self) -> Result<SimConfig, SimError> {
        if !self.alpha.is_finite() || !(0.0..1.0).contains(&self.alpha) {
            return Err(SimError::InvalidAlpha { alpha: self.alpha });
        }
        if !self.gamma.is_finite() || !(0.0..=1.0).contains(&self.gamma) {
            return Err(SimError::InvalidGamma { gamma: self.gamma });
        }
        if self.n_honest == 0 {
            return Err(SimError::NoHonestMiners);
        }
        if self.blocks == 0 {
            return Err(SimError::NoBlocks);
        }
        if (self.strategy == PoolStrategy::Table) != self.policy.is_some() {
            return Err(SimError::PolicyMismatch);
        }
        Ok(SimConfig {
            alpha: self.alpha,
            gamma: self.gamma,
            n_honest: self.n_honest,
            blocks: self.blocks,
            seed: self.seed,
            schedule: self.schedule.clone(),
            strategy: self.strategy,
            policy: self.policy.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::builder().build().unwrap();
        assert_eq!(c.n_honest(), 999);
        assert_eq!(c.blocks(), 100_000);
        assert_eq!(c.gamma(), 0.5);
        assert_eq!(c.schedule(), &RewardSchedule::ethereum());
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            SimConfig::builder().alpha(1.0).build(),
            Err(SimError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            SimConfig::builder().alpha(-0.2).build(),
            Err(SimError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            SimConfig::builder().gamma(2.0).build(),
            Err(SimError::InvalidGamma { .. })
        ));
        assert!(matches!(
            SimConfig::builder().n_honest(0).build(),
            Err(SimError::NoHonestMiners)
        ));
        assert!(matches!(
            SimConfig::builder().blocks(0).build(),
            Err(SimError::NoBlocks)
        ));
    }

    #[test]
    fn strategy_defaults_to_selfish() {
        let c = SimConfig::builder().build().unwrap();
        assert_eq!(c.strategy(), PoolStrategy::Selfish);
        assert!(c.policy().is_none());
        let h = SimConfig::builder()
            .strategy(PoolStrategy::Honest)
            .build()
            .unwrap();
        assert_eq!(h.strategy(), PoolStrategy::Honest);
    }

    #[test]
    fn policy_builder_installs_table_strategy() {
        let table = PolicyTable::honest(0.3, 0.5, 8);
        let c = SimConfig::builder().policy(table.clone()).build().unwrap();
        assert_eq!(c.strategy(), PoolStrategy::Table);
        assert_eq!(c.policy(), Some(&table));
        // with_seed keeps the (shared) table.
        let d = c.with_seed(9);
        assert_eq!(d.policy(), Some(&table));
    }

    #[test]
    fn table_strategy_without_table_is_rejected() {
        assert!(matches!(
            SimConfig::builder().strategy(PoolStrategy::Table).build(),
            Err(SimError::PolicyMismatch)
        ));
        // ... and installing a table then switching strategy is too.
        assert!(matches!(
            SimConfig::builder()
                .policy(PolicyTable::honest(0.3, 0.5, 8))
                .strategy(PoolStrategy::Selfish)
                .build(),
            Err(SimError::PolicyMismatch)
        ));
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let c = SimConfig::builder().alpha(0.4).seed(1).build().unwrap();
        let d = c.with_seed(99);
        assert_eq!(d.seed(), 99);
        assert_eq!(d.alpha(), 0.4);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SimConfig::builder().alpha(1.5).build().unwrap_err();
        assert!(e.to_string().contains("alpha"));
    }
}
