//! Per-worker telemetry shards and their deterministic merge.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::escape_string;
use crate::metrics::Histogram;

/// Telemetry accumulated by a single worker thread.
///
/// A shard is plain mutable state owned by one worker — no atomics, no
/// locks — so recording into it costs a handful of instructions.  Counters
/// and histogram buckets are `u64`s, which makes the merged totals
/// independent of how tasks were partitioned across workers: summing the
/// same per-task deltas in any grouping yields bit-identical results.
///
/// The wall-clock fields (`busy_ns`, `queue_wait_ns`) are measurement
/// artifacts of a particular run and carry no determinism guarantee.
#[derive(Debug, Clone, Default)]
pub struct TelemetryShard {
    /// Index of the worker that owns this shard.
    pub worker: usize,
    /// Number of tasks this worker claimed from the shared queue.
    pub tasks: u64,
    /// Wall-clock nanoseconds this worker spent executing tasks.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds this worker spent between tasks (claiming
    /// work, waiting on the queue, thread startup).
    pub queue_wait_ns: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl TelemetryShard {
    /// Creates an empty shard for worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        Self {
            worker,
            ..Self::default()
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add(&mut self, key: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(key) {
            *slot += delta;
        } else {
            self.counters.insert(key.to_string(), delta);
        }
    }

    /// Records one sample of the named distribution.
    #[inline]
    pub fn observe(&mut self, key: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// Records `n` identical samples of the named distribution at once
    /// (see [`Histogram::observe_n`]).
    #[inline]
    pub fn observe_n(&mut self, key: &str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe_n(value, n);
        } else {
            let mut h = Histogram::new();
            h.observe_n(value, n);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// Current value of the named counter (0 if never written).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Per-worker summary retained after a merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Tasks the worker claimed.
    pub tasks: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent between tasks.
    pub queue_wait_ns: u64,
}

impl WorkerStats {
    /// Fraction of `wall_ns` this worker spent executing tasks.
    #[must_use]
    pub fn busy_fraction(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall_ns as f64
        }
    }
}

/// Merged telemetry for one study phase or one parallel region.
///
/// Built either directly (single-threaded studies) or by merging per-worker
/// [`TelemetryShard`]s with [`Telemetry::merge_shards`].  Counter and
/// histogram totals from a merge are deterministic (see
/// [`TelemetryShard`]); `wall_ns`, phase timings and per-worker stats are
/// wall-clock measurements.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Wall-clock duration of the region this telemetry covers.
    pub wall_ns: u64,
    /// Worker threads used (0 = unknown / not a parallel region).
    pub threads: usize,
    phases: Vec<(String, u64)>,
    workers: Vec<WorkerStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Telemetry {
    /// Creates an empty telemetry summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges per-worker shards: counter and histogram totals are summed in
    /// key order (bit-identical for any partition of the same task set);
    /// per-worker busy/queue-wait stats are retained in worker order.
    #[must_use]
    pub fn merge_shards(shards: &[TelemetryShard]) -> Self {
        let mut merged = Self::new();
        merged.threads = shards.len();
        for shard in shards {
            merged.fold_shard(shard);
        }
        merged
    }

    /// Folds one worker shard into this summary (see
    /// [`Telemetry::merge_shards`]).
    pub fn fold_shard(&mut self, shard: &TelemetryShard) {
        self.workers.push(WorkerStats {
            worker: shard.worker,
            tasks: shard.tasks,
            busy_ns: shard.busy_ns,
            queue_wait_ns: shard.queue_wait_ns,
        });
        for (key, value) in &shard.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, hist) in &shard.histograms {
            self.histograms.entry(key.clone()).or_default().merge(hist);
        }
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Records one sample of the named distribution.
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
    }

    /// Appends a named phase with its wall-clock duration.
    pub fn add_phase(&mut self, name: &str, wall_ns: u64) {
        self.phases.push((name.to_string(), wall_ns));
    }

    /// Current value of the named counter (0 if never written).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of the named gauge.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Per-worker stats in worker order (empty if not a parallel region).
    #[must_use]
    pub fn workers(&self) -> &[WorkerStats] {
        &self.workers
    }

    /// Recorded phases in insertion order.
    #[must_use]
    pub fn phases(&self) -> &[(String, u64)] {
        &self.phases
    }

    /// Renders the telemetry as a JSON object (the value of a study's
    /// `"telemetry"` key).  `indent` is the number of spaces prefixed to
    /// the object's own lines; members are indented two further.
    #[must_use]
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let deep = " ".repeat(indent + 4);
        let mut parts: Vec<String> = Vec::new();
        parts.push(format!(
            "{inner}\"wall_ms\": {:.3}",
            self.wall_ns as f64 / 1.0e6
        ));
        parts.push(format!("{inner}\"threads\": {}", self.threads));
        if !self.phases.is_empty() {
            let rows: Vec<String> = self
                .phases
                .iter()
                .map(|(name, ns)| {
                    format!(
                        "{deep}{{\"name\": {}, \"wall_ms\": {:.3}}}",
                        escape_string(name),
                        *ns as f64 / 1.0e6
                    )
                })
                .collect();
            parts.push(format!(
                "{inner}\"phases\": [\n{}\n{inner}]",
                rows.join(",\n")
            ));
        }
        if !self.workers.is_empty() {
            let rows: Vec<String> = self
                .workers
                .iter()
                .map(|w| {
                    format!(
                        "{deep}{{\"worker\": {}, \"tasks_claimed\": {}, \"busy_ms\": {:.3}, \"queue_wait_ms\": {:.3}, \"busy_fraction\": {:.4}}}",
                        w.worker,
                        w.tasks,
                        w.busy_ns as f64 / 1.0e6,
                        w.queue_wait_ns as f64 / 1.0e6,
                        w.busy_fraction(self.wall_ns)
                    )
                })
                .collect();
            parts.push(format!(
                "{inner}\"workers\": [\n{}\n{inner}]",
                rows.join(",\n")
            ));
        }
        if !self.counters.is_empty() {
            let rows: Vec<String> = self
                .counters
                .iter()
                .map(|(k, v)| format!("{deep}{}: {v}", escape_string(k)))
                .collect();
            parts.push(format!(
                "{inner}\"counters\": {{\n{}\n{inner}}}",
                rows.join(",\n")
            ));
        }
        if !self.gauges.is_empty() {
            let rows: Vec<String> = self
                .gauges
                .iter()
                .map(|(k, v)| format!("{deep}{}: {v}", escape_string(k)))
                .collect();
            parts.push(format!(
                "{inner}\"gauges\": {{\n{}\n{inner}}}",
                rows.join(",\n")
            ));
        }
        if !self.histograms.is_empty() {
            let rows: Vec<String> = self
                .histograms
                .iter()
                .map(|(k, h)| {
                    format!(
                        "{deep}{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p99\": {}}}",
                        escape_string(k),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99)
                    )
                })
                .collect();
            parts.push(format!(
                "{inner}\"histograms\": {{\n{}\n{inner}}}",
                rows.join(",\n")
            ));
        }
        let mut out = String::from("{\n");
        out.push_str(&parts.join(",\n"));
        // Writing to a String cannot fail.
        let _ = write!(out, "\n{pad}}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_with(worker: usize, pairs: &[(&str, u64)]) -> TelemetryShard {
        let mut s = TelemetryShard::new(worker);
        for (k, v) in pairs {
            s.add(k, *v);
        }
        s
    }

    #[test]
    fn merge_is_partition_invariant() {
        // The same 6 task deltas split 1-way, 2-way, 3-way.
        let deltas = [3u64, 5, 7, 11, 13, 17];
        let splits: Vec<Vec<Vec<u64>>> = vec![
            vec![deltas.to_vec()],
            vec![deltas[..2].to_vec(), deltas[2..].to_vec()],
            vec![
                deltas[..1].to_vec(),
                deltas[1..4].to_vec(),
                deltas[4..].to_vec(),
            ],
        ];
        let mut totals = Vec::new();
        for split in splits {
            let shards: Vec<TelemetryShard> = split
                .iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let mut s = TelemetryShard::new(w);
                    for d in chunk {
                        s.add("delay.drops", *d);
                        s.observe("delay.inbox", *d);
                    }
                    s
                })
                .collect();
            let merged = Telemetry::merge_shards(&shards);
            totals.push((
                merged.counter("delay.drops"),
                merged
                    .histogram("delay.inbox")
                    .map(|h| h.buckets().to_vec()),
            ));
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
        assert_eq!(totals[0].0, 56);
    }

    #[test]
    fn json_rendering_parses_back() {
        let mut t = Telemetry::merge_shards(&[
            shard_with(0, &[("a.count", 2)]),
            shard_with(1, &[("a.count", 3), ("b.count", 1)]),
        ]);
        t.wall_ns = 5_000_000;
        t.set_gauge("host.parallelism", 8.0);
        t.observe("task.ns", 1024);
        t.add_phase("sweep", 2_500_000);
        let text = t.to_json(0);
        let v = crate::json::parse_json(&text).expect("telemetry JSON parses");
        let counters = v.get("counters").expect("counters present");
        assert_eq!(
            counters
                .get("a.count")
                .and_then(crate::json::JsonValue::as_u64),
            Some(5)
        );
        let workers = v.get("workers").and_then(crate::json::JsonValue::as_array);
        assert_eq!(workers.map(<[crate::json::JsonValue]>::len), Some(2));
        assert!(v.get("phases").is_some());
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn busy_fraction_is_bounded() {
        let w = WorkerStats {
            worker: 0,
            tasks: 4,
            busy_ns: 500,
            queue_wait_ns: 100,
        };
        assert_eq!(w.busy_fraction(0), 0.0);
        assert!((w.busy_fraction(1000) - 0.5).abs() < 1e-12);
    }
}
