//! The [`Recorder`] trait and its two stock implementations.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::events::EventKind;

/// A sink for telemetry signals emitted by instrumented code.
///
/// All methods have empty default bodies, so the no-op implementation
/// ([`NoopRecorder`]) is literally `impl Recorder for NoopRecorder {}` and
/// every call site inlines to nothing.  Hot paths that would otherwise pay
/// to *construct* an event (formatting a name, reading a clock) should
/// check [`Recorder::enabled`] first:
///
/// ```
/// use seleth_obs::{NoopRecorder, Recorder};
///
/// fn work(rec: &dyn Recorder) {
///     if rec.enabled() {
///         let start = rec.now_ns();
///         // ... expensive annotation ...
///         rec.span("work", 0, start, rec.now_ns());
///     }
/// }
/// work(&NoopRecorder);
/// ```
///
/// Implementations must be safe to call from multiple worker threads
/// concurrently (`Send + Sync`).
pub trait Recorder: Send + Sync {
    /// Returns `true` if this recorder actually stores events.  Callers may
    /// skip constructing expensive annotations when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Current monotonic time in nanoseconds since the recorder's epoch.
    /// The no-op default returns 0.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Adds `delta` to the named counter.
    fn counter_add(&self, _key: &str, _delta: u64) {}

    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, _key: &str, _value: f64) {}

    /// Records one sample of the named distribution.
    fn observe(&self, _key: &str, _value: u64) {}

    /// Records a completed span: `name` ran on `worker` from `start_ns` to
    /// `end_ns` (both relative to [`Recorder::now_ns`]'s epoch).
    fn span(&self, _name: &str, _worker: usize, _start_ns: u64, _end_ns: u64) {}

    /// Records one canonical flight-recorder event (see
    /// [`crate::events`]).  The stock sink is [`crate::EventLog`]; the
    /// default body is empty, so metrics-only recorders ignore events.
    fn event(&self, _kind: EventKind, _actor: u32, _a: u64, _b: u64) {}
}

/// The recorder that records nothing.  Every method is the trait's empty
/// default, so instrumented code monomorphises/devirtualises to no-ops.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A completed span captured by a [`TraceLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name, e.g. `"sweep:delay"` or `"task"`.
    pub name: String,
    /// Worker index the span ran on (0 for the coordinating thread).
    pub worker: usize,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the trace epoch.
    pub end_ns: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Renders the span as one JSON-lines record.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"name\": {}, \"worker\": {}, \"start_ns\": {}, \"end_ns\": {}, \"dur_ns\": {}}}",
            crate::json::escape_string(&self.name),
            self.worker,
            self.start_ns,
            self.end_ns,
            self.duration_ns()
        )
    }
}

/// An in-memory span/event recorder backing the `--trace <path>` flag of
/// the study bins.
///
/// Spans are buffered under a mutex (tracing is opt-in, so contention on
/// the hot path only exists when the user asked for a trace) and can be
/// dumped as JSON lines with [`TraceLog::write_jsonl`].
#[derive(Debug)]
pub struct TraceLog {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLog {
    /// Creates an empty trace log; its epoch is the moment of creation.
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Returns a snapshot of all recorded spans, in recording order.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        match self.events.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.events.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Returns `true` if no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders all spans as a JSON-lines document (one span per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            // Writing to a String cannot fail.
            let _ = writeln!(out, "{}", ev.to_json_line());
        }
        out
    }

    /// Writes the JSON-lines trace to `path`.
    ///
    /// # Errors
    /// Returns any I/O error from creating or writing the file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl Recorder for TraceLog {
    fn enabled(&self) -> bool {
        true
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn span(&self, name: &str, worker: usize, start_ns: u64, end_ns: u64) {
        let ev = SpanEvent {
            name: name.to_string(),
            worker,
            start_ns,
            end_ns,
        };
        match self.events.lock() {
            Ok(mut guard) => guard.push(ev),
            Err(poisoned) => poisoned.into_inner().push(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        assert_eq!(rec.now_ns(), 0);
        rec.counter_add("x", 1);
        rec.span("x", 0, 0, 1);
    }

    #[test]
    fn trace_log_records_spans_in_order() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        log.span("a", 0, 10, 20);
        log.span("b", 1, 15, 40);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].duration_ns(), 25);
    }

    #[test]
    fn jsonl_lines_parse_as_json() {
        let log = TraceLog::new();
        log.span("sweep:\"quoted\"", 2, 5, 9);
        let text = log.to_jsonl();
        let line = text.lines().next().expect("one line");
        let value = crate::json::parse_json(line).expect("valid json");
        assert_eq!(
            value.get("name").and_then(crate::json::JsonValue::as_str),
            Some("sweep:\"quoted\"")
        );
        assert_eq!(
            value.get("dur_ns").and_then(crate::json::JsonValue::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn now_ns_is_monotone() {
        let log = TraceLog::new();
        let a = log.now_ns();
        let b = log.now_ns();
        assert!(b >= a);
    }
}
