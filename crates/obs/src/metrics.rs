//! Telemetry primitives: atomic counters/gauges, fixed-bucket histograms,
//! and a monotonic stopwatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A shared, thread-safe monotonically increasing counter.
///
/// Uses relaxed atomics: counts are exact (every `add` lands), but no
/// ordering is implied with respect to other memory operations.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared, thread-safe last-write-wins `f64` gauge.
///
/// The value is stored as its IEEE-754 bit pattern in an `AtomicU64`, so
/// reads and writes are lock-free and never tear.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge initialised to `0.0`.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the gauge to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per
/// power-of-two magnitude of a `u64` sample.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram over non-negative integer samples.
///
/// Bucket `0` holds exact zeros; bucket `i > 0` holds samples in
/// `[2^(i-1), 2^i)`.  All state is plain `u64`, so merging histograms (or
/// summing per-worker shards) is order-independent and bit-deterministic —
/// unlike a floating-point mean accumulated in task order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples at once — equivalent to (but far
    /// cheaper than) `n` calls to [`Histogram::observe`]. Lets merged
    /// per-bucket counters (e.g. the delay engine's gossip hop counts)
    /// re-enter a histogram without replaying every sample.
    #[inline]
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the first
    /// bucket whose cumulative count reaches the target rank, clamped to the
    /// observed max.  Exact for zeros, within 2x for everything else.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil keeps q=1.0 at the max.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                let upper = if i == 0 { 0 } else { (1u128 << i) - 1 };
                let upper = u64::try_from(upper).unwrap_or(u64::MAX);
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts; bucket 0 is exact zeros, bucket `i` covers
    /// `[2^(i-1), 2^i)`.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A monotonic stopwatch for scoped wall-clock measurements.
///
/// ```
/// let sw = seleth_obs::Stopwatch::start();
/// let _elapsed_ns: u64 = sw.elapsed_ns();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() as f64 / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.buckets()[0], 1); // zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2,3
        assert_eq!(h.buckets()[3], 2); // 4..8 -> 4,7
        assert_eq!(h.buckets()[4], 1); // 8..16 -> 8
        assert_eq!(h.buckets()[10], 1); // 512..1024 -> 1023
        assert_eq!(h.buckets()[11], 1); // 1024..2048
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.observe(v * 17);
            } else {
                b.observe(v * 17);
            }
            all.observe(v * 17);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(p50 >= 256); // 500 lives in [512,1024), bound >= 511 >= 256
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }
}
