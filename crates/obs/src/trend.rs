//! Perf-trajectory evaluation over the `BENCH_history.jsonl` ledger.
//!
//! The bench bins append one snapshot row per run — git sha, host
//! fingerprint, headline metrics — to `results/BENCH_history.jsonl`.
//! This module parses those rows and evaluates the **trend**: for every
//! bin, the latest row is compared against the previous row from a
//! *comparable host* (same OS, architecture and `available_parallelism` —
//! cross-host deltas are meaningless), metric by metric, under a
//! noise-aware relative band.  Metrics are classified by name convention:
//!
//! * **higher is better**: names containing `per_sec`, `ratio` or
//!   `speedup`;
//! * **lower is better**: names ending in `_s`, `_ms`, `_ns` or
//!   containing `seconds`;
//! * anything else is informational and never gates.
//!
//! The default band factor is 1.5 (a metric must degrade by more than
//! 50% relative to the previous comparable row to trip the gate): the
//! bins already report best-of-N timings, and the 1-CPU CI box still
//! jitters by tens of percent, while a genuine 2× regression clears the
//! band decisively.  Override with `SELETH_TREND_BAND` (a float > 1) at
//! the `perf_report --trend` layer.

use std::fmt::Write as _;

use crate::json::{parse_json, JsonError, JsonValue};

/// One parsed row of the history ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Which bench bin produced the row (`bench_sim`, `bench_solver`).
    pub bin: String,
    /// Git commit the workspace was at (or `"unknown"`).
    pub git_sha: String,
    /// Seconds since the Unix epoch at append time.
    pub unix_time: u64,
    /// Host comparability key, e.g. `linux/x86_64/p1`.
    pub host: String,
    /// Headline metrics, in ledger order.
    pub metrics: Vec<(String, f64)>,
}

/// Parse a JSON-lines history ledger.  Blank lines are skipped; rows
/// missing `bin` or `metrics` are ignored (forward compatibility), but a
/// line that is not valid JSON is an error.
///
/// # Errors
/// Returns the first [`JsonError`] from an unparseable line.
pub fn parse_history(text: &str) -> Result<Vec<TrendRow>, JsonError> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = parse_json(line)?;
        let Some(bin) = doc.get("bin").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some(metrics_obj) = doc.get("metrics").and_then(JsonValue::as_object) else {
            continue;
        };
        let host = doc.get("host").map_or_else(
            || "unknown".to_string(),
            |h| {
                format!(
                    "{}/{}/p{:.0}",
                    h.get("os").and_then(JsonValue::as_str).unwrap_or("?"),
                    h.get("arch").and_then(JsonValue::as_str).unwrap_or("?"),
                    h.get("available_parallelism")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0)
                )
            },
        );
        let metrics = metrics_obj
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
            .collect();
        rows.push(TrendRow {
            bin: bin.to_string(),
            git_sha: doc
                .get("git_sha")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
            unix_time: doc
                .get("unix_time")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u64,
            host,
            metrics,
        });
    }
    Ok(rows)
}

/// How a metric's direction is judged, by name convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (throughputs, ratios, speedups).
    HigherBetter,
    /// Smaller values are better (timings).
    LowerBetter,
    /// Not gated; reported for information only.
    Informational,
}

/// Classify a metric name into a gating direction.
#[must_use]
pub fn direction_of(name: &str) -> Direction {
    if name.contains("per_sec") || name.contains("ratio") || name.contains("speedup") {
        Direction::HigherBetter
    } else if name.ends_with("_s")
        || name.ends_with("_ms")
        || name.ends_with("_ns")
        || name.contains("seconds")
    {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// The outcome of a trend evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Human-readable report, one line per compared metric.
    pub rendered: String,
    /// One entry per regressed metric (`bin metric old new`); empty means
    /// the gate passes.
    pub regressions: Vec<String>,
    /// Number of (bin, metric) pairs actually compared.
    pub compared: usize,
}

impl TrendReport {
    /// `true` if no compared metric regressed beyond the band.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Evaluate the perf trend over parsed ledger rows.
///
/// For each bin, the latest row is compared to the most recent *earlier*
/// row with the same host key.  A gated metric regresses when it is worse
/// than the baseline by more than the relative `band` factor (e.g. 1.5 =
/// 50% slack): lower-better metrics fail at `new > old * band`,
/// higher-better at `new * band < old`.  Bins or hosts with fewer than
/// two rows are reported but never gate (the first run seeds the ledger).
#[must_use]
pub fn evaluate_trend(rows: &[TrendRow], band: f64) -> TrendReport {
    let band = if band > 1.0 { band } else { 1.5 };
    let mut rendered = String::new();
    let mut regressions = Vec::new();
    let mut compared = 0usize;

    // Latest row per bin, in first-appearance bin order.
    let mut bins: Vec<&str> = Vec::new();
    for row in rows {
        if !bins.contains(&row.bin.as_str()) {
            bins.push(&row.bin);
        }
    }
    for bin in bins {
        let latest = rows
            .iter()
            .rev()
            .find(|r| r.bin == bin)
            .expect("bin came from rows");
        let baseline = rows
            .iter()
            .rev()
            .skip_while(|r| !std::ptr::eq(*r, latest))
            .skip(1)
            .find(|r| r.bin == bin && r.host == latest.host);
        let _ = writeln!(
            rendered,
            "== {bin} @ {} (host {}) ==",
            &latest.git_sha[..latest.git_sha.len().min(12)],
            latest.host
        );
        let Some(base) = baseline else {
            let _ = writeln!(rendered, "  (no earlier comparable-host row; seeding)");
            continue;
        };
        for (name, new) in &latest.metrics {
            let Some((_, old)) = base.metrics.iter().find(|(k, _)| k == name) else {
                continue;
            };
            let dir = direction_of(name);
            let (gated, regressed) = match dir {
                Direction::LowerBetter => (true, *new > old * band),
                Direction::HigherBetter => (true, new * band < *old),
                Direction::Informational => (false, false),
            };
            if gated {
                compared += 1;
            }
            let delta = if *old != 0.0 {
                100.0 * (new - old) / old.abs()
            } else {
                0.0
            };
            let verdict = if regressed {
                "REGRESSION"
            } else if gated {
                "ok"
            } else {
                "info"
            };
            let _ = writeln!(
                rendered,
                "  {name:<32} {old:>14.4} -> {new:>14.4}  {delta:>+7.1}%  {verdict}"
            );
            if regressed {
                regressions.push(format!("{bin} {name} {old} -> {new}"));
            }
        }
    }
    if rows.is_empty() {
        let _ = writeln!(rendered, "(empty ledger)");
    }
    TrendReport {
        rendered,
        regressions,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bin: &str, t: u64, metrics: &[(&str, f64)]) -> TrendRow {
        TrendRow {
            bin: bin.to_string(),
            git_sha: "deadbeef".to_string(),
            unix_time: t,
            host: "linux/x86_64/p1".to_string(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn direction_conventions() {
        assert_eq!(direction_of("blocks_per_sec"), Direction::HigherBetter);
        assert_eq!(direction_of("noop_overhead_ratio"), Direction::HigherBetter);
        assert_eq!(direction_of("speedup_t8"), Direction::HigherBetter);
        assert_eq!(direction_of("cold_solve_s"), Direction::LowerBetter);
        assert_eq!(direction_of("sweep_ms"), Direction::LowerBetter);
        assert_eq!(direction_of("queue_wait_ns"), Direction::LowerBetter);
        assert_eq!(direction_of("runs"), Direction::Informational);
    }

    #[test]
    fn parses_ledger_lines_and_skips_blanks() {
        let text = concat!(
            r#"{"bin": "bench_sim", "git_sha": "abc", "unix_time": 100, "#,
            r#""host": {"os": "linux", "arch": "x86_64", "available_parallelism": 1}, "#,
            r#""metrics": {"blocks_per_sec": 10.0}}"#,
            "\n\n",
            r#"{"bin": "bench_solver", "metrics": {"cold_solve_s": 2.0}}"#,
            "\n"
        );
        let rows = parse_history(text).expect("valid ledger");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bin, "bench_sim");
        assert_eq!(rows[0].host, "linux/x86_64/p1");
        assert_eq!(rows[0].metrics, vec![("blocks_per_sec".to_string(), 10.0)]);
        assert_eq!(rows[1].host, "unknown");
        assert!(parse_history("{not json").is_err());
    }

    #[test]
    fn single_row_seeds_without_gating() {
        let rows = vec![row("bench_sim", 1, &[("blocks_per_sec", 10.0)])];
        let r = evaluate_trend(&rows, 1.5);
        assert!(r.passed());
        assert_eq!(r.compared, 0);
        assert!(r.rendered.contains("seeding"));
    }

    #[test]
    fn clean_back_to_back_rows_pass() {
        let rows = vec![
            row("bench_sim", 1, &[("blocks_per_sec", 10.0), ("cold_s", 2.0)]),
            row("bench_sim", 2, &[("blocks_per_sec", 9.1), ("cold_s", 2.2)]),
        ];
        let r = evaluate_trend(&rows, 1.5);
        assert!(r.passed(), "{}", r.rendered);
        assert_eq!(r.compared, 2);
    }

    #[test]
    fn synthetic_two_x_slowdown_fails_both_directions() {
        let rows = vec![
            row("bench_sim", 1, &[("blocks_per_sec", 10.0)]),
            row("bench_sim", 2, &[("blocks_per_sec", 4.9)]),
        ];
        let r = evaluate_trend(&rows, 1.5);
        assert!(!r.passed());
        assert!(r.rendered.contains("REGRESSION"));

        let rows = vec![
            row("bench_solver", 1, &[("cold_solve_s", 2.0)]),
            row("bench_solver", 2, &[("cold_solve_s", 4.0)]),
        ];
        let r = evaluate_trend(&rows, 1.5);
        assert_eq!(r.regressions.len(), 1);
        assert!(r.regressions[0].contains("cold_solve_s"));
    }

    #[test]
    fn cross_host_rows_never_compare() {
        let mut other = row("bench_sim", 1, &[("blocks_per_sec", 100.0)]);
        other.host = "linux/x86_64/p64".to_string();
        let rows = vec![other, row("bench_sim", 2, &[("blocks_per_sec", 10.0)])];
        let r = evaluate_trend(&rows, 1.5);
        assert!(r.passed(), "{}", r.rendered);
        assert_eq!(r.compared, 0);
    }

    #[test]
    fn informational_metrics_never_gate() {
        let rows = vec![
            row("bench_sim", 1, &[("runs", 64.0)]),
            row("bench_sim", 2, &[("runs", 1.0)]),
        ];
        let r = evaluate_trend(&rows, 1.5);
        assert!(r.passed());
        assert!(r.rendered.contains("info"));
    }

    #[test]
    fn latest_vs_most_recent_comparable_not_first() {
        let rows = vec![
            row("bench_sim", 1, &[("blocks_per_sec", 100.0)]),
            row("bench_sim", 2, &[("blocks_per_sec", 10.0)]),
            row("bench_sim", 3, &[("blocks_per_sec", 9.0)]),
        ];
        // vs row 2 (10.0) this passes; vs row 1 (100.0) it would fail.
        let r = evaluate_trend(&rows, 1.5);
        assert!(r.passed(), "{}", r.rendered);
    }
}
