//! Zero-dependency telemetry core for the selfish-ethereum workspace.
//!
//! The crate is hand-rolled (no external dependencies, matching the offline
//! `vendor/` policy) and provides four layers:
//!
//! * **Primitives** ([`metrics`]): atomic [`Counter`]s and [`Gauge`]s for
//!   shared state, plus fixed-bucket power-of-two [`Histogram`]s and a
//!   monotonic [`Stopwatch`] for scoped timing.
//! * **Recorder** ([`recorder`]): the [`Recorder`] trait behind which all
//!   instrumentation sits.  The default method bodies are empty, so the
//!   no-op implementation ([`NoopRecorder`]) compiles to nothing on hot
//!   paths; [`TraceLog`] is an in-memory span sink that can be dumped as
//!   JSON lines for the `--trace` flag of the study bins.
//! * **Shards** ([`telemetry`]): per-worker [`TelemetryShard`]s accumulate
//!   counters, histograms and busy/queue-wait time without any locking, and
//!   merge deterministically into a [`Telemetry`] summary whose counter
//!   totals are bit-identical at any thread count.
//! * **Profiles** ([`profile`]): a tiny JSON parser ([`json`]) and
//!   [`render_profile`], which turns the `"telemetry"` and `"event_log"`
//!   blocks of any study JSON into a human-readable report (used by the
//!   `perf_report` bin).
//! * **Flight recorder** ([`events`]): a bounded ring-buffer [`EventLog`]
//!   of canonical structured events with a rolling splitmix64 digest and
//!   periodic checkpoints; [`trace_diff`] localizes the first divergent
//!   event between two recordings when a bit-identity gate fails.
//! * **Trend** ([`trend`]): parsing and noise-aware regression evaluation
//!   of the `results/BENCH_history.jsonl` perf-trajectory ledger (the
//!   `perf_report --trend` gate).
//!
//! Determinism contract: counter and histogram-bucket totals are plain
//! `u64` sums of per-task values, so a merged [`Telemetry`] is invariant to
//! how tasks were partitioned across workers.  Wall-clock fields (`busy_ns`,
//! `queue_wait_ns`, span timestamps) are measurement artifacts and are
//! explicitly excluded from that guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod events;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod telemetry;
pub mod trend;

pub use events::{trace_diff, Divergence, Event, EventKind, EventLog};
pub use json::{parse_json, JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, Stopwatch};
pub use profile::render_profile;
pub use recorder::{NoopRecorder, Recorder, SpanEvent, TraceLog};
pub use telemetry::{Telemetry, TelemetryShard, WorkerStats};
pub use trend::{evaluate_trend, parse_history, TrendReport, TrendRow};
