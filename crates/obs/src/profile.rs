//! Rendering of study telemetry into a human-readable profile.
//!
//! Used by the `perf_report` bin (and its round-trip test) to turn the
//! `"telemetry"` block of any study JSON into per-phase wall times,
//! per-worker utilization and hot-counter tables.

use std::fmt::Write as _;

use crate::json::{parse_json, JsonError, JsonValue};

/// Renders a human-readable profile from a study JSON document.
///
/// The document is parsed in full; every `"telemetry"` object found in the
/// tree (studies emit one at top level) is rendered as per-phase wall
/// times, a per-worker utilization table, hot counters sorted descending,
/// gauges, and histogram summaries.  A document without any telemetry
/// block still renders its header with a note, so the report degrades
/// gracefully on pre-telemetry artifacts.
///
/// # Errors
/// Returns a [`JsonError`] if `text` is not valid JSON.
pub fn render_profile(name: &str, text: &str) -> Result<String, JsonError> {
    let doc = parse_json(text)?;
    let mut out = String::new();
    let kind = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .unwrap_or("unknown");
    let _ = writeln!(out, "== {name} (kind: {kind}) ==");
    for key in ["generated_unix", "runs", "blocks", "format"] {
        if let Some(v) = doc.get(key) {
            match v {
                JsonValue::Number(n) => {
                    let _ = writeln!(out, "  {key}: {n}");
                }
                JsonValue::String(s) => {
                    let _ = writeln!(out, "  {key}: {s}");
                }
                _ => {}
            }
        }
    }
    let mut blocks = Vec::new();
    collect_named("telemetry", "", &doc, &mut blocks);
    let mut event_logs = Vec::new();
    collect_named("event_log", "", &doc, &mut event_logs);
    if blocks.is_empty() && event_logs.is_empty() {
        let _ = writeln!(out, "  (no telemetry block recorded)");
        return Ok(out);
    }
    for (path, telemetry) in blocks {
        render_block(&mut out, &path, telemetry);
    }
    for (path, log) in event_logs {
        render_event_log(&mut out, &path, log);
    }
    Ok(out)
}

/// Renders an `"event_log"` summary block (total count, final digest,
/// per-kind totals) — the flight recorder's footprint in a study JSON.
/// Degrades silently when fields are absent.
fn render_event_log(out: &mut String, path: &str, log: &JsonValue) {
    let _ = writeln!(out, "\n-- event log at {path} --");
    let count = num(log.get("count"));
    let digest = log
        .get("digest")
        .and_then(JsonValue::as_str)
        .unwrap_or("(none)");
    let _ = writeln!(out, "  events: {count:.0}, digest: {digest}");
    if let Some(kinds) = log.get("by_kind").and_then(JsonValue::as_object) {
        let mut rows: Vec<(&str, f64)> = kinds
            .iter()
            .map(|(k, v)| (k.as_str(), num(Some(v))))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (key, value) in rows {
            let _ = writeln!(out, "    {key:<36} {value:>16.0}");
        }
    }
}

fn collect_named<'a>(
    wanted: &str,
    path: &str,
    node: &'a JsonValue,
    found: &mut Vec<(String, &'a JsonValue)>,
) {
    match node {
        JsonValue::Object(map) => {
            for (key, value) in map {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                if key == wanted && value.as_object().is_some() {
                    found.push((child, value));
                } else {
                    collect_named(wanted, &child, value, found);
                }
            }
        }
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                collect_named(wanted, &format!("{path}[{i}]"), item, found);
            }
        }
        _ => {}
    }
}

fn num(v: Option<&JsonValue>) -> f64 {
    v.and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn render_block(out: &mut String, path: &str, telemetry: &JsonValue) {
    let _ = writeln!(out, "\n-- telemetry at {path} --");
    let wall_ms = num(telemetry.get("wall_ms"));
    let threads = num(telemetry.get("threads"));
    let _ = writeln!(out, "  wall: {wall_ms:.3} ms, threads: {threads:.0}");

    if let Some(phases) = telemetry.get("phases").and_then(JsonValue::as_array) {
        let _ = writeln!(out, "  phases:");
        for phase in phases {
            let name = phase.get("name").and_then(JsonValue::as_str).unwrap_or("?");
            let ms = num(phase.get("wall_ms"));
            let share = if wall_ms > 0.0 {
                100.0 * ms / wall_ms
            } else {
                0.0
            };
            let _ = writeln!(out, "    {name:<28} {ms:>12.3} ms  {share:>5.1}%");
        }
    }

    if let Some(workers) = telemetry.get("workers").and_then(JsonValue::as_array) {
        let _ = writeln!(
            out,
            "  workers:  id   tasks      busy_ms  queue_wait_ms  busy%  utilization"
        );
        for w in workers {
            let id = num(w.get("worker"));
            let tasks = num(w.get("tasks_claimed"));
            let busy = num(w.get("busy_ms"));
            let wait = num(w.get("queue_wait_ms"));
            let frac = num(w.get("busy_fraction"));
            let bar_len = (frac * 20.0).round().clamp(0.0, 20.0) as usize;
            let bar: String = "#".repeat(bar_len);
            let _ = writeln!(
                out,
                "           {id:>3} {tasks:>7.0} {busy:>12.3} {wait:>14.3} {:>5.1}  |{bar:<20}|",
                100.0 * frac
            );
        }
    }

    if let Some(counters) = telemetry.get("counters").and_then(JsonValue::as_object) {
        let mut rows: Vec<(&str, f64)> = counters
            .iter()
            .map(|(k, v)| (k.as_str(), num(Some(v))))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let _ = writeln!(out, "  hot counters:");
        for (key, value) in rows {
            let _ = writeln!(out, "    {key:<36} {value:>16.0}");
        }
    }

    if let Some(gauges) = telemetry.get("gauges").and_then(JsonValue::as_object) {
        let _ = writeln!(out, "  gauges:");
        for (key, value) in gauges {
            let _ = writeln!(out, "    {key:<36} {:>16.4}", num(Some(value)));
        }
    }

    if let Some(hists) = telemetry.get("histograms").and_then(JsonValue::as_object) {
        let _ = writeln!(out, "  histograms:");
        for (key, h) in hists {
            let _ = writeln!(
                out,
                "    {key:<28} n={:<8.0} mean={:<10.3} p50={:<8.0} p99={:<8.0} max={:.0}",
                num(h.get("count")),
                num(h.get("mean")),
                num(h.get("p50")),
                num(h.get("p99")),
                num(h.get("max"))
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_document_without_telemetry() {
        let text = r#"{"kind": "seleth-delay-study", "runs": 6}"#;
        let report = render_profile("delay_study.json", text).unwrap();
        assert!(report.contains("seleth-delay-study"));
        assert!(report.contains("no telemetry block"));
    }

    #[test]
    fn renders_telemetry_tables() {
        let mut t = crate::Telemetry::new();
        t.wall_ns = 10_000_000;
        t.threads = 2;
        t.add("delay.drops", 42);
        t.set_gauge("host.parallelism", 1.0);
        t.add_phase("sweep", 9_000_000);
        let mut shard = crate::TelemetryShard::new(0);
        shard.tasks = 3;
        shard.busy_ns = 8_000_000;
        shard.queue_wait_ns = 1_000_000;
        t.fold_shard(&shard);
        let doc = format!(
            "{{\n  \"kind\": \"seleth-chaos-study\",\n  \"telemetry\": {}\n}}\n",
            t.to_json(2)
        );
        let report = render_profile("chaos_study.json", &doc).unwrap();
        assert!(report.contains("telemetry at telemetry"));
        assert!(report.contains("delay.drops"));
        assert!(report.contains("sweep"));
        assert!(report.contains("host.parallelism"));
        assert!(report.contains("|#"));
    }

    #[test]
    fn renders_event_log_blocks() {
        let log = crate::EventLog::new(16);
        log.record(crate::EventKind::Mine, 0, 1, 2);
        log.record(crate::EventKind::Release, 0, 1, 3);
        let doc = format!(
            "{{\n  \"kind\": \"seleth-chaos-study\",\n  \"event_log\": {}\n}}\n",
            log.summary_json(2)
        );
        let report = render_profile("chaos_study.json", &doc).unwrap();
        assert!(report.contains("event log at event_log"));
        assert!(report.contains("events: 2"));
        assert!(report.contains("mine"));
        assert!(report.contains("release"));
    }

    #[test]
    fn propagates_parse_errors() {
        assert!(render_profile("x", "{not json").is_err());
    }
}
