//! A minimal hand-rolled JSON parser.
//!
//! The vendored `serde` in this workspace is a marker-only stub, so study
//! artifacts are emitted with `format!` and, until now, re-read with ad-hoc
//! string scanning.  `perf_report` needs real structure (nested telemetry
//! blocks, arrays of worker stats), so this module provides a small
//! recursive-descent parser into a [`JsonValue`] tree.  It accepts strict
//! JSON (RFC 8259) and nothing more.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string literal (escapes resolved).
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; insertion order is discarded in favour of key order so
    /// that lookups and re-rendering are deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Looks up `key` in an object node; `None` for other node kinds.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Returns the number if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `u64` if this node is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the string if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this node is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the key/value map if this node is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a strict-JSON document into a [`JsonValue`] tree.
///
/// # Errors
/// Returns a [`JsonError`] describing the first syntax error, including
/// trailing garbage after an otherwise valid document.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
#[must_use]
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                            // parse_hex4 leaves pos past the 4 digits; the
                            // shared increment below is for single-byte
                            // escapes, so compensate here.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            if (c as u32) < 0x20 {
                                return Err(self.err("raw control character in string"));
                            }
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid utf-8 in \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-12.5e2").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"kind": "study", "series": [{"x": 1, "y": [2, 3]}], "flag": false}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("study"));
        let series = v.get("series").and_then(JsonValue::as_array).unwrap();
        assert_eq!(series[0].get("x").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn escape_string_roundtrips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "unicode \u{00e9}\u{1F600}",
        ] {
            let escaped = escape_string(s);
            let parsed = parse_json(&escaped).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            parse_json("\"\\u00e9\"").unwrap().as_str(),
            Some("\u{00e9}")
        );
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(parse_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "tru", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_committed_style_output() {
        // Matches the format! style used by the study bins.
        let doc =
            "{\n  \"kind\": \"seleth-delay-study\",\n  \"rho_star\": 0.337635,\n  \"runs\": 6\n}\n";
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("runs").and_then(JsonValue::as_u64), Some(6));
        assert!(v.get("rho_star").and_then(JsonValue::as_f64).unwrap() > 0.3);
    }
}
