//! The flight recorder: a bounded ring buffer of canonical structured
//! events with a rolling state digest.
//!
//! Every correctness claim in the workspace rests on *bit identity* —
//! thread-count invariance, `FaultPlan::none()` engine equivalence,
//! byte-identical artifacts.  When such a gate fails, comparing two final
//! `f64` bit patterns says nothing about *where* two runs first parted
//! ways.  The [`EventLog`] closes that gap: instrumented code records each
//! semantically meaningful step (a block mined, heard, released; a policy
//! decision; a fault-coin outcome; a solver bisection step) as a small
//! fixed-size [`Event`], and every event folds into a rolling splitmix64
//! **digest** of the run so far.  Periodic digest **checkpoints** survive
//! even after the ring has evicted old events, so two logs can be compared
//! with [`trace_diff`] / [`EventLog::first_divergence`]: a binary search
//! over the common checkpoints brackets the first divergent window, and
//! the retained events inside it pin the exact first divergent event.
//!
//! Cost model: a log with capacity 0 ([`EventLog::disabled`]) performs no
//! allocation at construction and each `record` call is a single branch —
//! engines keep their recording handle as `Option<Arc<EventLog>>`, so the
//! fully disabled path stays allocation-free.  Recording never consults
//! any RNG and only *reads* simulation state, so attaching a recorder
//! cannot perturb a run (regression-gated in `tests/flight_recorder.rs`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::recorder::Recorder;

/// Initial digest value (the digest of an empty log).
pub const DIGEST_SEED: u64 = 0x5e1e_7468_f11e_57a7;

/// Maximum number of retained checkpoints; when reached, every other
/// checkpoint is dropped and the interval doubles, keeping memory bounded
/// for arbitrarily long runs.
const MAX_CHECKPOINTS: usize = 64;

/// The canonical event vocabulary of the workspace.
///
/// One flat enum across both simulation engines and the MDP solver, so a
/// single diff tool understands every log.  Payload conventions are
/// documented per variant; `f64` payloads are carried as raw bits
/// (`f64::to_bits`) so the digest is sensitive to the exact values the
/// bit-identity gates assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EventKind {
    /// A block was mined. `actor` = miner, `a` = block index, `b` = height.
    Mine,
    /// A strategist heard a block. `actor` = miner, `a` = block index,
    /// `b` = hear-time bits.
    Hear,
    /// A withheld block was released. `actor` = producer, `a` = block
    /// index, `b` = release-time bits.
    Release,
    /// A policy *adopt*. `actor` = miner, `a` = private length, `b` =
    /// honest length.
    Adopt,
    /// A policy *override*. `actor` = miner, `a` = private length, `b` =
    /// honest length.
    Override,
    /// A policy *match*. `actor` = miner, `a` = private length, `b` =
    /// honest length.
    Match,
    /// A forced adopt (out-of-model branch or table fallback). `actor` =
    /// miner, `a` = block index or private length, `b` = context bits.
    ForcedAdopt,
    /// A loss coin came up drop. `a` = block index, `b` = delivery attempt.
    FaultDrop,
    /// A duplication coin queued an inert copy. `a` = block index, `b` =
    /// attempt.
    FaultDuplicate,
    /// A partition stalled a delivery. `a` = block index, `b` = attempt.
    FaultStall,
    /// A crashed miner missed a delivery. `actor` = miner, `a` = block
    /// index.
    CrashMiss,
    /// A recovered miner resynchronized via forced adopt. `actor` = miner,
    /// `a` = recovery-time bits.
    CrashResync,
    /// A mining event thinned by a crashed winner. `actor` = miner.
    Thinned,
    /// A Dinkelbach bisection step. `a` = ρ bits, `b` = iteration.
    Bisect,
    /// A value-iteration sweep finished. `a` = sweep index, `b` = residual
    /// bits.
    Sweep,
    /// A warm start was applied. `a` = cached states, `b` = context.
    WarmStart,
    /// A gossip edge delivered a block to a miner (graph propagation).
    /// `actor` = receiving miner, `a` = block index, `b` = arrival-time
    /// bits (time after release).
    EdgeDelivery,
    /// A block reached a miner through relay forwarding (two or more
    /// edges on its earliest path). `actor` = receiving miner, `a` =
    /// block index, `b` = hop count.
    RelayHop,
}

/// Every kind, in stable code order (used by summaries and tests).
pub const EVENT_KINDS: [EventKind; 18] = [
    EventKind::Mine,
    EventKind::Hear,
    EventKind::Release,
    EventKind::Adopt,
    EventKind::Override,
    EventKind::Match,
    EventKind::ForcedAdopt,
    EventKind::FaultDrop,
    EventKind::FaultDuplicate,
    EventKind::FaultStall,
    EventKind::CrashMiss,
    EventKind::CrashResync,
    EventKind::Thinned,
    EventKind::Bisect,
    EventKind::Sweep,
    EventKind::WarmStart,
    EventKind::EdgeDelivery,
    EventKind::RelayHop,
];

impl EventKind {
    /// Stable numeric code folded into the digest (1-based; never reuse
    /// or reorder codes — recorded digests depend on them).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            EventKind::Mine => 1,
            EventKind::Hear => 2,
            EventKind::Release => 3,
            EventKind::Adopt => 4,
            EventKind::Override => 5,
            EventKind::Match => 6,
            EventKind::ForcedAdopt => 7,
            EventKind::FaultDrop => 8,
            EventKind::FaultDuplicate => 9,
            EventKind::FaultStall => 10,
            EventKind::CrashMiss => 11,
            EventKind::CrashResync => 12,
            EventKind::Thinned => 13,
            EventKind::Bisect => 14,
            EventKind::Sweep => 15,
            EventKind::WarmStart => 16,
            EventKind::EdgeDelivery => 17,
            EventKind::RelayHop => 18,
        }
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Mine => "mine",
            EventKind::Hear => "hear",
            EventKind::Release => "release",
            EventKind::Adopt => "adopt",
            EventKind::Override => "override",
            EventKind::Match => "match",
            EventKind::ForcedAdopt => "forced_adopt",
            EventKind::FaultDrop => "fault_drop",
            EventKind::FaultDuplicate => "fault_duplicate",
            EventKind::FaultStall => "fault_stall",
            EventKind::CrashMiss => "crash_miss",
            EventKind::CrashResync => "crash_resync",
            EventKind::Thinned => "thinned",
            EventKind::Bisect => "bisect",
            EventKind::Sweep => "sweep",
            EventKind::WarmStart => "warm_start",
            EventKind::EdgeDelivery => "edge_delivery",
            EventKind::RelayHop => "relay_hop",
        }
    }
}

/// One recorded event, with the digest before and after folding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// 0-based position in the full event stream (not the ring).
    pub index: u64,
    /// What happened.
    pub kind: EventKind,
    /// Acting miner/worker id (0 when not applicable).
    pub actor: u32,
    /// First payload word (see [`EventKind`] conventions).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Rolling digest *before* this event folded in.
    pub pre_digest: u64,
    /// Rolling digest *after* this event folded in.
    pub post_digest: u64,
}

impl Event {
    /// Renders the event as one JSON-lines record.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"index\": {}, \"kind\": {}, \"actor\": {}, \"a\": {}, \"b\": {}, \
             \"pre_digest\": \"{:#018x}\", \"post_digest\": \"{:#018x}\"}}",
            self.index,
            crate::json::escape_string(self.kind.name()),
            self.actor,
            self.a,
            self.b,
            self.pre_digest,
            self.post_digest
        )
    }

    /// `true` if the two events describe the same step (digests excluded:
    /// two streams can reach the same step along different prefixes).
    #[must_use]
    pub fn same_step(&self, other: &Event) -> bool {
        self.kind == other.kind
            && self.actor == other.actor
            && self.a == other.a
            && self.b == other.b
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold one event into the rolling digest: a four-stage splitmix64 chain
/// over the previous digest and the event's full identity.
#[must_use]
pub fn fold_digest(digest: u64, kind: EventKind, actor: u32, a: u64, b: u64) -> u64 {
    let mut h = splitmix64(digest ^ kind.code().wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = splitmix64(h ^ u64::from(actor));
    h = splitmix64(h ^ a);
    splitmix64(h ^ b)
}

#[derive(Debug)]
struct LogInner {
    /// Retained events, oldest first; at most `capacity` of them.
    ring: VecDeque<Event>,
    /// Total events recorded (including evicted ones).
    count: u64,
    /// Rolling digest over *all* events (evicted ones included).
    digest: u64,
    /// `(event count, digest)` checkpoints at multiples of `interval`.
    checkpoints: Vec<(u64, u64)>,
    /// Current checkpoint spacing (doubles when `MAX_CHECKPOINTS` hit).
    interval: u64,
    /// Per-kind event totals, indexed by `code() - 1`.
    by_kind: [u64; EVENT_KINDS.len()],
}

/// A bounded flight recorder.
///
/// Thread-safe (a mutex guards the ring; recording is opt-in, so the lock
/// only exists on runs that asked for it) and cheap when disabled: with
/// capacity 0 nothing is allocated and [`EventLog::record`] returns after
/// one branch, before touching the lock.
///
/// Implements [`Recorder`], so anything that accepts `&dyn Recorder`
/// (e.g. the observed solver) can write into a flight recorder through
/// the same trait the metrics layer uses.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// A log retaining the last `capacity` events.  `capacity` 0 is the
    /// disabled log (equivalent to [`EventLog::disabled`]); the default
    /// checkpoint interval is 256 events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_checkpoint_interval(capacity, 256)
    }

    /// As [`EventLog::new`] with an explicit initial checkpoint spacing
    /// (tests use small intervals to exercise compaction).
    ///
    /// `interval` 0 is corrected to 1.
    #[must_use]
    pub fn with_checkpoint_interval(capacity: usize, interval: u64) -> Self {
        EventLog {
            capacity,
            inner: Mutex::new(LogInner {
                ring: VecDeque::new(),
                count: 0,
                digest: DIGEST_SEED,
                checkpoints: Vec::new(),
                interval: interval.max(1),
                by_kind: [0; EVENT_KINDS.len()],
            }),
        }
    }

    /// The disabled log: no allocation, every `record` a single branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Retention capacity this log was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` if this log stores events (capacity > 0).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record one event.  No-op (one branch, no lock) when disabled.
    pub fn record(&self, kind: EventKind, actor: u32, a: u64, b: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        let pre = inner.digest;
        let post = fold_digest(pre, kind, actor, a, b);
        let ev = Event {
            index: inner.count,
            kind,
            actor,
            a,
            b,
            pre_digest: pre,
            post_digest: post,
        };
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ev);
        inner.digest = post;
        inner.count += 1;
        let code_ix = (kind.code() - 1) as usize;
        inner.by_kind[code_ix] += 1;
        if inner.count.is_multiple_of(inner.interval) {
            let cp = (inner.count, post);
            inner.checkpoints.push(cp);
            if inner.checkpoints.len() >= MAX_CHECKPOINTS {
                // Keep every other checkpoint (the even multiples of the
                // doubled interval) and halve the list.
                let doubled = inner.interval * 2;
                inner.checkpoints.retain(|&(n, _)| n % doubled == 0);
                inner.interval = doubled;
            }
        }
    }

    /// Total events recorded, including ones the ring has evicted.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.lock().count
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// `true` if nothing has been recorded (or the log is disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The rolling digest over all recorded events.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.lock().digest
    }

    /// Snapshot of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.lock().ring.iter().copied().collect()
    }

    /// Snapshot of the digest checkpoints `(event count, digest)`.
    #[must_use]
    pub fn checkpoints(&self) -> Vec<(u64, u64)> {
        self.lock().checkpoints.clone()
    }

    /// Per-kind totals for every kind with at least one event.
    #[must_use]
    pub fn counts_by_kind(&self) -> Vec<(EventKind, u64)> {
        let inner = self.lock();
        EVENT_KINDS
            .iter()
            .filter_map(|&k| {
                let n = inner.by_kind[(k.code() - 1) as usize];
                (n > 0).then_some((k, n))
            })
            .collect()
    }

    /// The retained event at absolute stream index `i`, if still in the
    /// ring.
    #[must_use]
    pub fn event_at(&self, i: u64) -> Option<Event> {
        let inner = self.lock();
        let oldest = inner.count - inner.ring.len() as u64;
        if i < oldest || i >= inner.count {
            return None;
        }
        inner.ring.get((i - oldest) as usize).copied()
    }

    /// Renders the retained events as a JSON-lines document.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            // Writing to a String cannot fail.
            let _ = writeln!(out, "{}", ev.to_json_line());
        }
        out
    }

    /// Writes the JSON-lines event dump to `path`.
    ///
    /// # Errors
    /// Returns any I/O error from creating or writing the file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// A JSON summary block (`"event_log"` convention in study JSONs):
    /// total count, final digest, and per-kind totals.  Rendered by
    /// [`crate::render_profile`] when present.
    #[must_use]
    pub fn summary_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner_pad = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let _ = writeln!(out, "{inner_pad}\"count\": {},", self.count());
        let _ = writeln!(out, "{inner_pad}\"digest\": \"{:#018x}\",", self.digest());
        let _ = writeln!(out, "{inner_pad}\"by_kind\": {{");
        let kinds = self.counts_by_kind();
        for (i, (kind, n)) in kinds.iter().enumerate() {
            let comma = if i + 1 < kinds.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{inner_pad}  {}: {n}{comma}",
                crate::json::escape_string(kind.name())
            );
        }
        let _ = writeln!(out, "{inner_pad}}}");
        let _ = write!(out, "{pad}}}");
        out
    }

    /// Locate the first event where `self` and `other` diverge.
    ///
    /// Returns `None` when the logs are identical (same count, same final
    /// digest).  Otherwise the common digest checkpoints are
    /// binary-searched for the first divergent window — divergence is
    /// persistent: once the streams differ, every later digest differs —
    /// and the retained events inside it are compared index by index.
    /// When both rings still hold the divergent event the result is
    /// `exact` and carries both sides; when the ring evicted it, the
    /// result degrades to the checkpoint-bracketed lower bound with
    /// `exact == false`.
    #[must_use]
    pub fn first_divergence(&self, other: &EventLog) -> Option<Divergence> {
        let (count_a, digest_a) = {
            let g = self.lock();
            (g.count, g.digest)
        };
        let (count_b, digest_b) = {
            let g = other.lock();
            (g.count, g.digest)
        };
        if count_a == count_b && digest_a == digest_b {
            return None;
        }

        // Common checkpoints (both logs checkpointed at that count),
        // sorted by count; prepend the implicit empty-log checkpoint.
        let cps_a = self.checkpoints();
        let cps_b = other.checkpoints();
        let mut common: Vec<(u64, u64, u64)> = vec![(0, DIGEST_SEED, DIGEST_SEED)];
        let mut j = 0usize;
        for &(n, da) in &cps_a {
            while j < cps_b.len() && cps_b[j].0 < n {
                j += 1;
            }
            if j < cps_b.len() && cps_b[j].0 == n {
                common.push((n, da, cps_b[j].1));
            }
        }
        // Binary search: digests agree on a prefix of `common` and differ
        // on the rest (persistence of divergence).
        let split = common.partition_point(|&(_, da, db)| da == db);
        let lower = common[split - 1].0; // streams agree through this count
        let upper = common
            .get(split)
            .map_or(count_a.min(count_b), |&(n, _, _)| n);

        // Scan the bracketed window in the retained rings.
        let mut fallback: Option<Divergence> = None;
        for i in lower..upper {
            match (self.event_at(i), other.event_at(i)) {
                (Some(ea), Some(eb)) => {
                    if !ea.same_step(&eb) || ea.post_digest != eb.post_digest {
                        return Some(Divergence {
                            index: i,
                            exact: true,
                            left: Some(ea),
                            right: Some(eb),
                        });
                    }
                }
                (ea, eb) => {
                    // Ring eviction: the best we can say is "inside the
                    // bracketed window, at or after i".
                    if fallback.is_none() {
                        fallback = Some(Divergence {
                            index: i,
                            exact: false,
                            left: ea,
                            right: eb,
                        });
                    }
                }
            }
        }
        if let Some(d) = fallback {
            return Some(d);
        }
        // The whole common prefix agrees event by event: one log simply
        // has extra events beyond the other.
        let i = count_a.min(count_b);
        Some(Divergence {
            index: i,
            exact: true,
            left: self.event_at(i),
            right: other.event_at(i),
        })
    }
}

impl Recorder for EventLog {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn event(&self, kind: EventKind, actor: u32, a: u64, b: u64) {
        self.record(kind, actor, a, b);
    }
}

/// The outcome of [`trace_diff`]: where two event streams first part ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index of the first divergent event (exact), or the tightest
    /// known lower bound when the ring evicted the window (`exact` false).
    pub index: u64,
    /// `true` when the divergent event itself was retained and compared
    /// on both sides.
    pub exact: bool,
    /// The left log's event at `index`, if retained.
    pub left: Option<Event>,
    /// The right log's event at `index`, if retained.
    pub right: Option<Event>,
}

impl Divergence {
    /// A one-paragraph human-readable report, the payload of every
    /// bit-identity gate failure message.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let precision = if self.exact {
            "first divergent event"
        } else {
            "divergence at or after event (ring evicted the exact window)"
        };
        let _ = writeln!(out, "{precision} #{}", self.index);
        for (side, ev) in [
            ("left ", self.left.as_ref()),
            ("right", self.right.as_ref()),
        ] {
            match ev {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "  {side}: kind={} actor={} a={} b={} pre={:#018x} post={:#018x}",
                        e.kind.name(),
                        e.actor,
                        e.a,
                        e.b,
                        e.pre_digest,
                        e.post_digest
                    );
                }
                None => {
                    let _ = writeln!(out, "  {side}: (no event — stream ended or evicted)");
                }
            }
        }
        out
    }
}

/// Compare two flight recordings and report the first divergent event,
/// if any.  See [`EventLog::first_divergence`].
#[must_use]
pub fn trace_diff(left: &EventLog, right: &EventLog) -> Option<Divergence> {
    left.first_divergence(right)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-event by index.
    fn ev(i: u64) -> (EventKind, u32, u64, u64) {
        let kind = EVENT_KINDS[(i % EVENT_KINDS.len() as u64) as usize];
        (kind, (i % 7) as u32, i * 3, i ^ 0xabcd)
    }

    fn fill(log: &EventLog, n: u64) {
        for i in 0..n {
            let (k, actor, a, b) = ev(i);
            log.record(k, actor, a, b);
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::disabled();
        assert!(!log.is_enabled());
        fill(&log, 100);
        assert_eq!(log.count(), 0);
        assert_eq!(log.len(), 0);
        assert!(log.is_empty());
        assert_eq!(log.digest(), DIGEST_SEED);
        assert!(log.checkpoints().is_empty());
        assert!(log.events().is_empty());
    }

    #[test]
    fn wraparound_retains_last_capacity_events_at_every_capacity() {
        let n = 300u64;
        // Reference digest: one unbounded fold.
        let mut reference = DIGEST_SEED;
        for i in 0..n {
            let (k, actor, a, b) = ev(i);
            reference = fold_digest(reference, k, actor, a, b);
        }
        for capacity in [1usize, 2, 3, 7, 64, 299, 300, 1000] {
            let log = EventLog::with_checkpoint_interval(capacity, 16);
            fill(&log, n);
            assert_eq!(log.count(), n, "capacity {capacity}");
            assert_eq!(log.len(), capacity.min(n as usize), "capacity {capacity}");
            assert_eq!(log.digest(), reference, "digest ignores eviction");
            let events = log.events();
            // Retained events are exactly the last `len` of the stream,
            // with contiguous indices and a consistent digest chain.
            let oldest = n - events.len() as u64;
            for (off, e) in events.iter().enumerate() {
                let i = oldest + off as u64;
                assert_eq!(e.index, i);
                let (k, actor, a, b) = ev(i);
                assert_eq!((e.kind, e.actor, e.a, e.b), (k, actor, a, b));
                assert_eq!(e.post_digest, fold_digest(e.pre_digest, k, actor, a, b));
                if off > 0 {
                    assert_eq!(e.pre_digest, events[off - 1].post_digest);
                }
            }
            // event_at agrees with events() and rejects evicted indices.
            assert_eq!(log.event_at(oldest), events.first().copied());
            assert_eq!(log.event_at(n - 1), events.last().copied());
            if oldest > 0 {
                assert_eq!(log.event_at(oldest - 1), None);
            }
            assert_eq!(log.event_at(n), None);
        }
    }

    #[test]
    fn checkpoints_align_with_the_digest_chain() {
        let log = EventLog::with_checkpoint_interval(1 << 12, 8);
        fill(&log, 500);
        let cps = log.checkpoints();
        assert!(!cps.is_empty());
        let mut rolling = DIGEST_SEED;
        let mut expected = Vec::new();
        for i in 0..500u64 {
            let (k, actor, a, b) = ev(i);
            rolling = fold_digest(rolling, k, actor, a, b);
            expected.push((i + 1, rolling));
        }
        for &(n, d) in &cps {
            assert_eq!(
                expected[(n - 1) as usize],
                (n, d),
                "checkpoint at {n} matches the reference chain"
            );
        }
        // Checkpoints are strictly increasing in count.
        assert!(cps.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn checkpoint_compaction_bounds_memory_and_doubles_interval() {
        let log = EventLog::with_checkpoint_interval(4, 1);
        fill(&log, 10_000);
        let cps = log.checkpoints();
        assert!(
            cps.len() < MAX_CHECKPOINTS,
            "compaction keeps the list bounded: {}",
            cps.len()
        );
        // All surviving checkpoints are multiples of the final interval.
        let interval = log.lock().interval;
        assert!(interval > 1, "interval doubled at least once");
        assert!(cps.iter().all(|&(n, _)| n % interval == 0));
    }

    #[test]
    fn identical_logs_have_no_divergence() {
        let a = EventLog::new(64);
        let b = EventLog::new(64);
        fill(&a, 200);
        fill(&b, 200);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(trace_diff(&a, &b), None);
    }

    #[test]
    fn divergence_is_localized_exactly_when_retained() {
        for diverge_at in [0u64, 1, 5, 99, 250, 499] {
            let a = EventLog::with_checkpoint_interval(1 << 12, 16);
            let b = EventLog::with_checkpoint_interval(1 << 12, 16);
            fill(&a, 500);
            for i in 0..500u64 {
                let (k, actor, x, y) = ev(i);
                if i == diverge_at {
                    b.record(k, actor, x ^ 1, y);
                } else {
                    b.record(k, actor, x, y);
                }
            }
            let d = trace_diff(&a, &b).expect("streams differ");
            assert!(d.exact, "diverge_at {diverge_at}");
            assert_eq!(d.index, diverge_at);
            let (l, r) = (d.left.unwrap(), d.right.unwrap());
            assert_eq!(l.pre_digest, r.pre_digest, "agreed up to the event");
            assert_ne!(l.post_digest, r.post_digest);
            assert_eq!(l.a ^ 1, r.a);
            assert!(d.describe().contains(&format!("#{diverge_at}")));
        }
    }

    #[test]
    fn divergence_from_extra_events_points_past_the_shorter_log() {
        let a = EventLog::new(256);
        let b = EventLog::new(256);
        fill(&a, 100);
        fill(&b, 150);
        let d = trace_diff(&a, &b).expect("counts differ");
        assert!(d.exact);
        assert_eq!(d.index, 100);
        assert!(d.left.is_none());
        assert_eq!(d.right.unwrap().index, 100);
    }

    #[test]
    fn evicted_divergence_degrades_to_checkpoint_bounds() {
        // Tiny ring, early divergence: the event itself is long gone, but
        // the checkpoints still bracket it below the full stream length.
        let a = EventLog::with_checkpoint_interval(4, 8);
        let b = EventLog::with_checkpoint_interval(4, 8);
        fill(&a, 1000);
        for i in 0..1000u64 {
            let (k, actor, x, y) = ev(i);
            if i == 100 {
                b.record(k, actor, x ^ 1, y);
            } else {
                b.record(k, actor, x, y);
            }
        }
        let d = trace_diff(&a, &b).expect("streams differ");
        assert!(!d.exact);
        assert!(d.index <= 100, "lower bound at or before the divergence");
        // The checkpoint bracket is genuinely informative: well before the
        // end of the stream.
        assert!(d.index >= 96, "bracketed by the last agreeing checkpoint");
        assert!(d.describe().contains("evicted"));
    }

    #[test]
    fn recorder_trait_routes_into_the_log() {
        let log = EventLog::new(8);
        let rec: &dyn Recorder = &log;
        assert!(rec.enabled());
        rec.event(EventKind::Bisect, 0, 42, 7);
        assert_eq!(log.count(), 1);
        assert_eq!(log.events()[0].kind, EventKind::Bisect);
        let off: &dyn Recorder = &EventLog::disabled();
        assert!(!off.enabled());
        off.event(EventKind::Bisect, 0, 1, 2);
    }

    #[test]
    fn summary_json_parses_and_carries_counts() {
        let log = EventLog::new(32);
        log.record(EventKind::Mine, 0, 1, 1);
        log.record(EventKind::Mine, 1, 2, 2);
        log.record(EventKind::Release, 0, 1, 0);
        let doc = log.summary_json(0);
        let v = crate::json::parse_json(&doc).expect("valid json");
        assert_eq!(v.get("count").and_then(crate::JsonValue::as_f64), Some(3.0));
        let by_kind = v.get("by_kind").expect("by_kind block");
        assert_eq!(
            by_kind.get("mine").and_then(crate::JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            by_kind.get("release").and_then(crate::JsonValue::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn jsonl_lines_parse() {
        let log = EventLog::new(8);
        log.record(EventKind::Hear, 3, 10, 20);
        let text = log.to_jsonl();
        let v = crate::json::parse_json(text.lines().next().expect("one line")).expect("json");
        assert_eq!(
            v.get("kind").and_then(crate::JsonValue::as_str),
            Some("hear")
        );
    }
}
