//! The CSR migration must be a pure storage change: these properties pin
//! the CSR-backed solvers **bit-for-bit** against the pre-CSR nested-row
//! implementations (copied verbatim below as references) on random
//! irreducible chains. Any reordering of the floating-point arithmetic
//! would show up here as an exact-equality failure.

use proptest::prelude::*;

use seleth_markov::hitting::HittingOptions;
use seleth_markov::{ChainBuilder, Dtmc, SolveMethod, SolveOptions};

type Rows = Vec<Vec<(usize, f64)>>;

/// A random irreducible chain: a Hamiltonian cycle (guarantees
/// irreducibility) plus random extra edges and self-loops.
fn random_chain(n: usize, extra: Vec<(usize, usize, u8)>, loops: Vec<u8>) -> Dtmc<usize> {
    let mut b = ChainBuilder::new();
    for i in 0..n {
        b.add_rate(i, (i + 1) % n, 1.0);
    }
    for (from, to, w) in extra {
        b.add_rate(from % n, to % n, 0.1 + f64::from(w));
    }
    for (i, w) in loops.into_iter().enumerate().take(n) {
        b.add_rate(i, i, f64::from(w) * 0.1);
    }
    b.build_dtmc()
}

fn chain_strategy() -> impl Strategy<Value = Dtmc<usize>> {
    (2usize..25)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0usize..n, 0usize..n, 0u8..5), 0..30),
                proptest::collection::vec(0u8..5, n),
            )
        })
        .prop_map(|(n, extra, loops)| random_chain(n, extra, loops))
}

/// Recover the nested-row representation the old implementation stored
/// (the CSR rows are column-sorted exactly like the old builder's output).
fn nested_rows(chain: &Dtmc<usize>) -> Rows {
    (0..chain.len())
        .map(|i| chain.matrix().row(i).collect())
        .collect()
}

// ---------------------------------------------------------------------
// Reference implementations: the seed's nested-row kernels, verbatim.
// ---------------------------------------------------------------------

fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v {
            *x /= total;
        }
    }
}

fn reference_power_iteration(rows: &Rows, opts: &SolveOptions) -> Option<Vec<f64>> {
    let n = rows.len();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for it in 0..opts.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, row) in rows.iter().enumerate() {
            let p = pi[i];
            if p == 0.0 {
                continue;
            }
            for &(j, q) in row {
                next[j] += p * q;
            }
        }
        normalize(&mut next);
        let residual: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if residual < opts.tolerance {
            return Some(pi);
        }
        if it % 97 == 96 {
            for (a, b) in pi.iter_mut().zip(&next) {
                *a = 0.5 * (*a + *b);
            }
            normalize(&mut pi);
        }
    }
    None
}

fn reference_gauss_seidel(rows: &Rows, opts: &SolveOptions) -> Option<Vec<f64>> {
    let n = rows.len();
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut diag = vec![0.0; n];
    for (i, row) in rows.iter().enumerate() {
        for &(j, q) in row {
            if i == j {
                diag[j] = q;
            } else {
                cols[j].push((i, q));
            }
        }
    }
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..opts.max_iterations {
        let mut residual = 0.0;
        for j in 0..n {
            let incoming: f64 = cols[j].iter().map(|&(i, q)| pi[i] * q).sum();
            let denom = 1.0 - diag[j];
            let new = if denom > f64::EPSILON {
                incoming / denom
            } else {
                pi[j]
            };
            residual += (new - pi[j]).abs();
            pi[j] = new;
        }
        normalize(&mut pi);
        if residual < opts.tolerance {
            normalize(&mut pi);
            return Some(pi);
        }
    }
    None
}

fn reference_dense_lu(rows: &Rows) -> Option<Vec<f64>> {
    let n = rows.len();
    let mut a = vec![0.0f64; n * n];
    for (i, row) in rows.iter().enumerate() {
        for &(j, q) in row {
            a[j * n + i] += q;
        }
    }
    for i in 0..n {
        a[i * n + i] -= 1.0;
    }
    for i in 0..n {
        a[(n - 1) * n + i] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    for col in 0..n {
        let (pivot_row, pivot_abs) = (col..n)
            .map(|r| (r, a[r * n + col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty range");
        if pivot_abs < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(pivot_row * n + k, col * n + k);
            }
            b.swap(pivot_row, col);
        }
        let pivot = a[col * n + col];
        for r in (col + 1)..n {
            let factor = a[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[r * n + k] -= factor * a[col * n + k];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    normalize(&mut x);
    Some(x)
}

/// The seed's `expected_hitting_times` (Gauss–Seidel sweep restricted to
/// states that can reach the target set), verbatim over nested rows.
fn reference_hitting_times(
    rows: &Rows,
    is_target: &[bool],
    opts: HittingOptions,
) -> Option<Vec<Option<f64>>> {
    let n = rows.len();
    // Reverse BFS from the target set.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, row) in rows.iter().enumerate() {
        for &(j, _) in row {
            reverse[j].push(i);
        }
    }
    let mut reach = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n)
        .filter(|&i| is_target[i])
        .inspect(|&i| reach[i] = true)
        .collect();
    while let Some(i) = queue.pop_front() {
        for &j in &reverse[i] {
            if !reach[j] {
                reach[j] = true;
                queue.push_back(j);
            }
        }
    }

    let mut h = vec![0.0f64; n];
    for _ in 0..opts.max_iterations {
        let mut delta = 0.0f64;
        for i in 0..n {
            if is_target[i] || !reach[i] {
                continue;
            }
            let mut acc = 1.0;
            let mut self_p = 0.0;
            for &(s, p) in &rows[i] {
                if s == i {
                    self_p = p;
                } else if reach[s] && !is_target[s] {
                    acc += p * h[s];
                }
                if !reach[s] && !is_target[s] && p > 0.0 {
                    acc += p * 1e18;
                }
            }
            let new = if self_p < 1.0 {
                acc / (1.0 - self_p)
            } else {
                f64::INFINITY
            };
            delta = delta.max((new - h[i]).abs());
            h[i] = new;
        }
        if delta < opts.tolerance {
            return Some(
                (0..n)
                    .map(|i| {
                        if is_target[i] {
                            Some(0.0)
                        } else if reach[i] && h[i] < 1e17 {
                            Some(h[i])
                        } else {
                            None
                        }
                    })
                    .collect(),
            );
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power iteration over CSR reproduces the nested-row implementation
    /// exactly, bit for bit.
    #[test]
    fn power_iteration_bit_for_bit(chain in chain_strategy()) {
        let opts = SolveOptions::with_method(SolveMethod::PowerIteration);
        let pi = chain.stationary(opts).expect("power");
        let want = reference_power_iteration(&nested_rows(&chain), &opts)
            .expect("reference converges whenever the CSR solver does");
        for (i, w) in want.iter().enumerate() {
            prop_assert_eq!(pi.prob_at(i).to_bits(), w.to_bits(), "state {}", i);
        }
    }

    /// Gauss–Seidel over the once-materialized CSR transpose reproduces
    /// the nested-column implementation exactly.
    #[test]
    fn gauss_seidel_bit_for_bit(chain in chain_strategy()) {
        let opts = SolveOptions::with_method(SolveMethod::GaussSeidel);
        let pi = chain.stationary(opts).expect("gauss-seidel");
        let want = reference_gauss_seidel(&nested_rows(&chain), &opts)
            .expect("reference converges whenever the CSR solver does");
        for (i, w) in want.iter().enumerate() {
            prop_assert_eq!(pi.prob_at(i).to_bits(), w.to_bits(), "state {}", i);
        }
    }

    /// The dense-LU fallback assembled from CSR rows reproduces the
    /// nested-row assembly exactly.
    #[test]
    fn dense_lu_bit_for_bit(chain in chain_strategy()) {
        let opts = SolveOptions::with_method(SolveMethod::DenseLu);
        let pi = chain.stationary(opts).expect("dense lu");
        let want = reference_dense_lu(&nested_rows(&chain))
            .expect("reference solves whenever the CSR solver does");
        for (i, w) in want.iter().enumerate() {
            prop_assert_eq!(pi.prob_at(i).to_bits(), w.to_bits(), "state {}", i);
        }
    }

    /// `expected_hitting_times` is unchanged by the CSR migration.
    #[test]
    fn hitting_times_bit_for_bit(chain in chain_strategy(), target_pick in 0usize..25) {
        let n = chain.len();
        let target = target_pick % n;
        let h = chain
            .expected_hitting_times(&[target], HittingOptions::default())
            .expect("hitting times");
        let mut is_target = vec![false; n];
        is_target[target] = true;
        let want = reference_hitting_times(
            &nested_rows(&chain),
            &is_target,
            HittingOptions::default(),
        )
        .expect("reference converges whenever the CSR solver does");
        for i in 0..n {
            match (h[i], want[i]) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "state {}", i)
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "state {}: {:?} vs {:?}", i, a, b),
            }
        }
    }
}
