//! Property-based tests of the Markov machinery on randomly generated
//! chains: solver cross-agreement, stationarity, and first-passage
//! consistency.

use proptest::prelude::*;

use seleth_markov::hitting::HittingOptions;
use seleth_markov::{ChainBuilder, Dtmc, SolveMethod, SolveOptions};

/// A random irreducible chain: a Hamiltonian cycle (guarantees
/// irreducibility) plus random extra edges and self-loops.
fn random_chain(n: usize, extra: Vec<(usize, usize, u8)>, loops: Vec<u8>) -> Dtmc<usize> {
    let mut b = ChainBuilder::new();
    for i in 0..n {
        b.add_rate(i, (i + 1) % n, 1.0);
    }
    for (from, to, w) in extra {
        b.add_rate(from % n, to % n, 0.1 + f64::from(w));
    }
    for (i, w) in loops.into_iter().enumerate().take(n) {
        b.add_rate(i, i, f64::from(w) * 0.1);
    }
    b.build_dtmc()
}

fn chain_strategy() -> impl Strategy<Value = Dtmc<usize>> {
    (2usize..25)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0usize..n, 0usize..n, 0u8..5), 0..30),
                proptest::collection::vec(0u8..5, n),
            )
        })
        .prop_map(|(n, extra, loops)| random_chain(n, extra, loops))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three solvers agree on random irreducible chains.
    #[test]
    fn solvers_agree(chain in chain_strategy()) {
        let gs = chain
            .stationary(SolveOptions::with_method(SolveMethod::GaussSeidel))
            .expect("gauss-seidel");
        let power = chain
            .stationary(SolveOptions::with_method(SolveMethod::PowerIteration))
            .expect("power");
        let lu = chain
            .stationary(SolveOptions::with_method(SolveMethod::DenseLu))
            .expect("dense lu");
        prop_assert!(gs.l1_distance(&power) < 1e-7);
        prop_assert!(gs.l1_distance(&lu) < 1e-7);
    }

    /// The stationary vector is non-negative, normalized, and invariant
    /// under one application of the transition matrix.
    #[test]
    fn stationary_is_fixed_point(chain in chain_strategy()) {
        let pi = chain.stationary(SolveOptions::default()).expect("solve");
        let mut total = 0.0;
        for (_, p) in pi.iter() {
            prop_assert!(p >= -1e-12);
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-10);
        // pi P = pi, checked via expectation of indicator functions.
        for target in 0..chain.len().min(5) {
            let direct = pi.prob(&target);
            let via_step: f64 = (0..chain.len())
                .map(|i| pi.prob(&i) * chain.prob(&i, &target))
                .sum();
            prop_assert!((direct - via_step).abs() < 1e-9);
        }
    }

    /// Kac's formula on random chains: expected return time = 1/π.
    #[test]
    fn kac_formula(chain in chain_strategy()) {
        let pi = chain.stationary(SolveOptions::default()).expect("solve");
        let state = 0usize;
        let ret = chain
            .expected_return_time(&state, HittingOptions::default())
            .expect("return time");
        let expected = 1.0 / pi.prob(&state);
        prop_assert!(
            (ret - expected).abs() / expected < 1e-6,
            "return {ret} vs 1/pi {expected}"
        );
    }

    /// Hit-before probabilities are genuine probabilities and
    /// complementary at the boundary states.
    #[test]
    fn hit_before_is_probability(chain in chain_strategy()) {
        let n = chain.len();
        prop_assume!(n >= 3);
        let (a, b) = (0usize, n / 2);
        prop_assume!(a != b);
        let p = chain
            .probability_hits_before(&a, &b, HittingOptions::default())
            .expect("harmonic solve");
        for (i, &v) in p.iter().enumerate() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "p[{i}] = {v}");
        }
        prop_assert!((p[chain.index_of(&a).unwrap()] - 1.0).abs() < 1e-12);
        prop_assert!(p[chain.index_of(&b).unwrap()].abs() < 1e-12);
    }

    /// Evolving any start distribution long enough lands on the
    /// stationary distribution (ergodic theorem on our aperiodic chains).
    #[test]
    fn evolution_converges(chain in chain_strategy()) {
        // Ensure aperiodicity by adding a self-loop-rich chain: skip pure
        // cycles, which are periodic.
        let has_self_loop = (0..chain.len()).any(|i| chain.prob(&i, &i) > 0.0);
        prop_assume!(has_self_loop);
        let pi = chain.stationary(SolveOptions::default()).expect("solve");
        let evolved = chain.evolve_from(&0, 20_000);
        prop_assert!(pi.l1_distance(&evolved) < 1e-6);
    }
}
