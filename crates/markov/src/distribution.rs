use std::collections::HashMap;
use std::hash::Hash;

/// A probability distribution over the states of a chain.
///
/// Returned by the stationary solvers; indexable both by dense index and by
/// the original state value.
///
/// ```
/// use seleth_markov::{ChainBuilder, SolveOptions};
/// let mut b = ChainBuilder::new();
/// b.add_rate('a', 'b', 1.0);
/// b.add_rate('b', 'a', 1.0);
/// let pi = b.build_dtmc().stationary(SolveOptions::default()).unwrap();
/// assert_eq!(pi.len(), 2);
/// let total: f64 = pi.iter().map(|(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Distribution<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    probs: Vec<f64>,
}

impl<S: Eq + Hash + Clone> Distribution<S> {
    pub(crate) fn from_parts(states: Vec<S>, index: HashMap<S, usize>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(states.len(), probs.len());
        Distribution {
            states,
            index,
            probs,
        }
    }

    /// Probability of `state`; `0.0` for states not in the chain.
    pub fn prob(&self, state: &S) -> f64 {
        self.index.get(state).map_or(0.0, |&i| self.probs[i])
    }

    /// Probability of the state with dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn prob_at(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` if the distribution covers no states.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Iterate over `(state, probability)` pairs in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = (&S, f64)> + '_ {
        self.states.iter().zip(self.probs.iter().copied())
    }

    /// The state with the highest stationary probability, with that
    /// probability. `None` for an empty distribution.
    pub fn mode(&self) -> Option<(&S, f64)> {
        let (i, &p) = self
            .probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))?;
        Some((&self.states[i], p))
    }

    /// Expected value of `f` under the distribution.
    pub fn expect<F: FnMut(&S) -> f64>(&self, mut f: F) -> f64 {
        self.iter().map(|(s, p)| p * f(s)).sum()
    }

    /// Total probability mass of states satisfying `pred`.
    pub fn mass_where<F: FnMut(&S) -> bool>(&self, mut pred: F) -> f64 {
        self.iter().filter(|(s, _)| pred(s)).map(|(_, p)| p).sum()
    }

    /// L1 distance to another distribution over the same chain.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different lengths.
    pub fn l1_distance(&self, other: &Distribution<S>) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "distributions cover different chains"
        );
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> Distribution<u32> {
        let states = vec![0u32, 1, 2];
        let index = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        Distribution::from_parts(states, index, vec![0.2, 0.5, 0.3])
    }

    #[test]
    fn prob_lookup() {
        let d = dist();
        assert_eq!(d.prob(&1), 0.5);
        assert_eq!(d.prob(&99), 0.0);
        assert_eq!(d.prob_at(2), 0.3);
    }

    #[test]
    fn mode_and_expect() {
        let d = dist();
        assert_eq!(d.mode(), Some((&1u32, 0.5)));
        let mean = d.expect(|&s| s as f64);
        assert!((mean - (0.5 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn mass_where_partitions() {
        let d = dist();
        let even = d.mass_where(|s| s % 2 == 0);
        let odd = d.mass_where(|s| s % 2 == 1);
        assert!((even + odd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_distance_zero_for_self() {
        let d = dist();
        assert_eq!(d.l1_distance(&d), 0.0);
    }
}
