//! Generic Markov-chain machinery used by the selfish-mining analysis.
//!
//! This crate provides the numerical substrate for the 2-dimensional Markov
//! process of *Selfish Mining in Ethereum* (Niu & Feng, ICDCS 2019): sparse
//! transition structures over arbitrary state types, continuous-time chains
//! with uniformization, and several stationary-distribution solvers
//! (power iteration, Gauss–Seidel, dense LU) so results can be
//! cross-validated against each other and against closed forms.
//!
//! All solvers run over contiguous [`csr`] storage (`row_ptr`/`col_idx`/
//! `values` arrays); state values and hashing live only at the construction
//! boundary, where [`ChainBuilder`] interns states into dense indices.
//!
//! # Quick example
//!
//! A two-state weather chain: sunny → rainy with probability 0.1,
//! rainy → sunny with probability 0.5.
//!
//! ```
//! use seleth_markov::{ChainBuilder, SolveOptions};
//!
//! # fn main() -> Result<(), seleth_markov::SolveError> {
//! let mut b = ChainBuilder::new();
//! b.add_rate("sunny", "rainy", 0.1);
//! b.add_rate("sunny", "sunny", 0.9);
//! b.add_rate("rainy", "sunny", 0.5);
//! b.add_rate("rainy", "rainy", 0.5);
//! let chain = b.build_dtmc();
//! let pi = chain.stationary(SolveOptions::default())?;
//! assert!((pi.prob(&"sunny") - 5.0 / 6.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! The chain builder accepts *rates*; [`ChainBuilder::build_dtmc`] normalizes
//! each row into probabilities (the embedded jump chain), while
//! [`ChainBuilder::build_ctmc`] keeps rates and exposes uniformization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod builder;
pub mod csr;
mod ctmc;
mod distribution;
mod dtmc;
mod error;
pub mod hitting;
mod solve;

pub use builder::ChainBuilder;
pub use ctmc::Ctmc;
pub use distribution::Distribution;
pub use dtmc::Dtmc;
pub use error::SolveError;
pub use solve::{SolveMethod, SolveOptions};

/// Helpers for constructing standard textbook chains, used in tests and
/// benchmarks as ground truth.
pub mod classic {
    use crate::{ChainBuilder, Dtmc};

    /// Build an M/M/1/K queue (birth–death chain) with arrival rate
    /// `lambda`, service rate `mu` and capacity `capacity` (states
    /// `0..=capacity`).
    ///
    /// Its stationary distribution is the truncated geometric
    /// `pi_k ∝ (lambda/mu)^k`, which makes it a convenient oracle for solver
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` or `mu` is not strictly positive.
    ///
    /// ```
    /// use seleth_markov::{classic, SolveOptions};
    /// let q = classic::mm1k(1.0, 2.0, 10);
    /// let pi = q.stationary(SolveOptions::default()).unwrap();
    /// // rho = 1/2: pi_0 = (1 - rho) / (1 - rho^11)
    /// assert!((pi.prob(&0) - 0.5 / (1.0 - 0.5f64.powi(11))).abs() < 1e-9);
    /// ```
    pub fn mm1k(lambda: f64, mu: f64, capacity: usize) -> Dtmc<usize> {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(mu > 0.0, "mu must be positive");
        let mut b = ChainBuilder::new();
        for k in 0..=capacity {
            if k < capacity {
                b.add_rate(k, k + 1, lambda);
            }
            if k > 0 {
                b.add_rate(k, k - 1, mu);
            }
        }
        // Uniformize so the embedded chain has the same stationary
        // distribution as the CTMC: add self-loops topping rates up to a
        // common constant.
        let total = lambda + mu;
        b.add_rate(0, 0, total - lambda);
        if capacity > 0 {
            b.add_rate(capacity, capacity, total - mu);
        }
        b.build_dtmc()
    }
}
