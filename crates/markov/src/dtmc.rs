use std::collections::HashMap;
use std::hash::Hash;

use crate::csr::CsrMatrix;
use crate::distribution::Distribution;
use crate::error::SolveError;
use crate::solve::{self, SolveOptions};

/// A discrete-time Markov chain with row-stochastic transition matrix.
///
/// Built with [`crate::ChainBuilder::build_dtmc`]; rows are normalized at
/// build time, so `prob` always returns a probability. Transitions are
/// stored in a contiguous [`CsrMatrix`]; the state → index
/// [`HashMap`] exists only for boundary lookups (`prob`, `index_of`), never
/// inside the numeric kernels.
///
/// ```
/// use seleth_markov::{ChainBuilder, SolveOptions};
/// let mut b = ChainBuilder::new();
/// b.add_rate("work", "rest", 1.0);
/// b.add_rate("rest", "work", 3.0);
/// b.add_rate("rest", "rest", 1.0);
/// let chain = b.build_dtmc();
/// assert_eq!(chain.prob(&"work", &"rest"), 1.0);
/// let pi = chain.stationary(SolveOptions::default()).unwrap();
/// assert!((pi.prob(&"work") - 3.0 / 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Dtmc<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    matrix: CsrMatrix,
}

impl<S: Eq + Hash + Clone> Dtmc<S> {
    pub(crate) fn from_parts(states: Vec<S>, index: HashMap<S, usize>, matrix: CsrMatrix) -> Self {
        Dtmc {
            states,
            index,
            matrix,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states in dense-index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Dense index of `state`, if present.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// The CSR transition matrix (row `i` holds the out-transitions of the
    /// state at dense index `i`, column-sorted).
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Iterate the non-zero transitions out of dense index `i` as
    /// `(column, probability)` pairs.
    pub(crate) fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.matrix.row(i)
    }

    /// One-step transition probability `from → to` (0 if either state is
    /// unknown or the transition is absent).
    pub fn prob(&self, from: &S, to: &S) -> f64 {
        let (Some(&fi), Some(&ti)) = (self.index.get(from), self.index.get(to)) else {
            return 0.0;
        };
        self.matrix.get(fi, ti)
    }

    /// Iterate the non-zero transitions out of `state`.
    pub fn transitions_from<'a>(&'a self, state: &S) -> impl Iterator<Item = (&'a S, f64)> + 'a {
        let (cols, vals) = self
            .index
            .get(state)
            .map_or((&[] as &[usize], &[] as &[f64]), |&i| {
                self.matrix.row_entries(i)
            });
        cols.iter()
            .zip(vals)
            .map(move |(&j, &p)| (&self.states[j], p))
    }

    /// Compute the stationary distribution `π = π P`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the chain is empty, has dead-end states, is
    /// reducible (when checking is enabled), or the iterative solver fails to
    /// converge within budget.
    pub fn stationary(&self, opts: SolveOptions) -> Result<Distribution<S>, SolveError> {
        let probs = solve::solve(&self.matrix, &opts)?;
        Ok(Distribution::from_parts(
            self.states.clone(),
            self.index.clone(),
            probs,
        ))
    }

    /// Evolve an initial distribution `n` steps: returns `π₀ Pⁿ`.
    ///
    /// The initial distribution assigns all mass to `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a state of the chain.
    pub fn evolve_from(&self, start: &S, n: usize) -> Distribution<S> {
        let i0 = *self
            .index
            .get(start)
            .expect("start state must be in the chain");
        let mut pi = vec![0.0; self.states.len()];
        pi[i0] = 1.0;
        let mut next = vec![0.0; self.states.len()];
        for _ in 0..n {
            self.matrix.left_mul_vec(&pi, &mut next);
            std::mem::swap(&mut pi, &mut next);
        }
        Distribution::from_parts(self.states.clone(), self.index.clone(), pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::SolveMethod;
    use crate::ChainBuilder;

    fn chain() -> Dtmc<&'static str> {
        let mut b = ChainBuilder::new();
        b.add_rate("a", "b", 2.0);
        b.add_rate("a", "a", 2.0);
        b.add_rate("b", "a", 1.0);
        b.build_dtmc()
    }

    #[test]
    fn rows_are_normalized() {
        let c = chain();
        assert!((c.prob(&"a", &"b") - 0.5).abs() < 1e-12);
        assert!((c.prob(&"a", &"a") - 0.5).abs() < 1e-12);
        assert_eq!(c.prob(&"b", &"a"), 1.0);
        assert_eq!(c.prob(&"zzz", &"a"), 0.0);
    }

    #[test]
    fn transitions_from_lists_neighbors() {
        let c = chain();
        let mut out: Vec<_> = c.transitions_from(&"a").collect();
        out.sort_by_key(|(s, _)| *s);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn evolve_converges_to_stationary() {
        let c = chain();
        let pi = c.stationary(SolveOptions::default()).unwrap();
        let evolved = c.evolve_from(&"a", 200);
        assert!(pi.l1_distance(&evolved) < 1e-9);
    }

    #[test]
    fn stationary_matches_hand_computation() {
        // pi_a * 0.5 = pi_b  =>  pi = (2/3, 1/3)
        let c = chain();
        for m in [
            SolveMethod::PowerIteration,
            SolveMethod::GaussSeidel,
            SolveMethod::DenseLu,
        ] {
            let pi = c.stationary(SolveOptions::with_method(m)).unwrap();
            assert!((pi.prob(&"a") - 2.0 / 3.0).abs() < 1e-9, "{m:?}");
        }
    }
}
