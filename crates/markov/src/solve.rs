//! Solver configuration and the numerical kernels shared by [`crate::Dtmc`]
//! and [`crate::Ctmc`].
//!
//! Every kernel operates on a [`CsrMatrix`]: contiguous `row_ptr`/`col_idx`
//! /`values` arrays, so the inner loops are linear scans over flat memory.
//! Gauss–Seidel additionally materializes the transpose once per solve
//! (its sweeps are column-oriented).

use crate::csr::CsrMatrix;
use crate::error::SolveError;

/// Which numerical method to use for the stationary distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolveMethod {
    /// Repeated application of the transition matrix to a distribution.
    /// Robust and memory-light; linear convergence.
    #[default]
    PowerIteration,
    /// Gauss–Seidel sweeps on `π P = π`; usually converges in far fewer
    /// iterations than power iteration on the banded chains produced by the
    /// selfish-mining model.
    GaussSeidel,
    /// Direct dense Gaussian elimination on `(Pᵀ − I) π = 0` with the
    /// normalization constraint. Exact up to floating point, `O(n³)`;
    /// intended for chains up to a few thousand states.
    DenseLu,
}

/// Options controlling stationary-distribution computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Numerical method; see [`SolveMethod`].
    pub method: SolveMethod,
    /// Convergence tolerance on the L1 residual between successive iterates
    /// (iterative methods only).
    pub tolerance: f64,
    /// Iteration budget for the iterative methods.
    pub max_iterations: usize,
    /// If `true` (default) the solver first verifies the chain is strongly
    /// connected and returns [`SolveError::Reducible`] otherwise. Disable for
    /// chains known to be irreducible when the BFS cost matters.
    pub check_irreducible: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: SolveMethod::PowerIteration,
            tolerance: 1e-12,
            max_iterations: 200_000,
            check_irreducible: true,
        }
    }
}

impl SolveOptions {
    /// Options preset for the given method, other fields default.
    pub fn with_method(method: SolveMethod) -> Self {
        SolveOptions {
            method,
            ..SolveOptions::default()
        }
    }
}

/// Verify every state has at least one outgoing transition.
pub(crate) fn check_no_dead_ends(matrix: &CsrMatrix) -> Result<(), SolveError> {
    for i in 0..matrix.n_rows() {
        if matrix.row_len(i) == 0 {
            return Err(SolveError::DeadEndState { index: i });
        }
    }
    Ok(())
}

/// Check strong connectivity with a forward BFS on the matrix and a
/// backward BFS on its transpose, both from state 0. For a finite chain
/// this is equivalent to irreducibility.
pub(crate) fn check_irreducible(matrix: &CsrMatrix) -> Result<(), SolveError> {
    let n = matrix.n_rows();
    if n == 0 {
        return Err(SolveError::EmptyChain);
    }
    let reverse = matrix.transpose();
    if bfs_covers(matrix) && bfs_covers(&reverse) {
        Ok(())
    } else {
        Err(SolveError::Reducible)
    }
}

fn bfs_covers(adjacency: &CsrMatrix) -> bool {
    let n = adjacency.n_rows();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1;
    while let Some(i) = queue.pop_front() {
        for (j, _) in adjacency.row(i) {
            if !seen[j] {
                seen[j] = true;
                count += 1;
                queue.push_back(j);
            }
        }
    }
    count == n
}

/// Power iteration: `π ← π P` until the L1 change drops below tolerance.
pub(crate) fn power_iteration(
    matrix: &CsrMatrix,
    opts: &SolveOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = matrix.n_rows();
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for it in 0..opts.max_iterations {
        matrix.left_mul_vec(&pi, &mut next);
        normalize(&mut next);
        let residual: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if residual < opts.tolerance {
            return Ok(pi);
        }
        // Periodic chains oscillate; damp every so often by averaging.
        if it % 97 == 96 {
            for (a, b) in pi.iter_mut().zip(&next) {
                *a = 0.5 * (*a + *b);
            }
            normalize(&mut pi);
        }
    }
    let residual: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
    Err(SolveError::NotConverged {
        iterations: opts.max_iterations,
        residual,
    })
}

/// Gauss–Seidel on the fixed point `π_j = Σ_i π_i P_ij` (excluding the
/// diagonal term, solved for explicitly). Sweeps run over the transposed
/// matrix, built once per solve.
pub(crate) fn gauss_seidel(
    matrix: &CsrMatrix,
    opts: &SolveOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = matrix.n_rows();
    // Row j of the transpose lists (i, P_ij) by ascending i; the diagonal
    // entry is skipped during accumulation and solved for explicitly.
    let transpose = matrix.transpose();
    let mut pi = vec![1.0 / n as f64; n];
    for _ in 0..opts.max_iterations {
        let mut residual = 0.0;
        for j in 0..n {
            let mut incoming = 0.0;
            let mut diag = 0.0;
            let (cols, vals) = transpose.row_entries(j);
            for (&i, &q) in cols.iter().zip(vals) {
                if i == j {
                    diag = q;
                } else {
                    incoming += pi[i] * q;
                }
            }
            let denom = 1.0 - diag;
            let new = if denom > f64::EPSILON {
                incoming / denom
            } else {
                pi[j]
            };
            residual += (new - pi[j]).abs();
            pi[j] = new;
        }
        normalize(&mut pi);
        if residual < opts.tolerance {
            normalize(&mut pi);
            return Ok(pi);
        }
    }
    Err(SolveError::NotConverged {
        iterations: opts.max_iterations,
        residual: f64::NAN,
    })
}

/// Dense direct solve of `π (P − I) = 0`, replacing the last equation by the
/// normalization `Σ π = 1`. Gaussian elimination with partial pivoting.
pub(crate) fn dense_lu(matrix: &CsrMatrix) -> Result<Vec<f64>, SolveError> {
    let n = matrix.n_rows();
    // Build A = (P^T - I), then overwrite the last row with ones; b = e_n.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for (j, q) in matrix.row(i) {
            a[j * n + i] += q;
        }
    }
    for i in 0..n {
        a[i * n + i] -= 1.0;
    }
    for i in 0..n {
        a[(n - 1) * n + i] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let (pivot_row, pivot_abs) = (col..n)
            .map(|r| (r, a[r * n + col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("non-empty range");
        if pivot_abs < 1e-300 {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(pivot_row * n + k, col * n + k);
            }
            b.swap(pivot_row, col);
        }
        let pivot = a[col * n + col];
        for r in (col + 1)..n {
            let factor = a[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[r * n + k] -= factor * a[col * n + k];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    // Clip tiny negative round-off and renormalize.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    normalize(&mut x);
    Ok(x)
}

pub(crate) fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v {
            *x /= total;
        }
    }
}

pub(crate) fn solve(matrix: &CsrMatrix, opts: &SolveOptions) -> Result<Vec<f64>, SolveError> {
    if matrix.is_empty() {
        return Err(SolveError::EmptyChain);
    }
    check_no_dead_ends(matrix)?;
    if opts.check_irreducible {
        check_irreducible(matrix)?;
    }
    match opts.method {
        SolveMethod::PowerIteration => power_iteration(matrix, opts),
        SolveMethod::GaussSeidel => gauss_seidel(matrix, opts),
        SolveMethod::DenseLu => dense_lu(matrix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> CsrMatrix {
        CsrMatrix::from_rows(&[vec![(0, 0.9), (1, 0.1)], vec![(0, 0.5), (1, 0.5)]])
    }

    #[test]
    fn all_methods_agree_on_two_state() {
        let matrix = two_state();
        let expected = [5.0 / 6.0, 1.0 / 6.0];
        for method in [
            SolveMethod::PowerIteration,
            SolveMethod::GaussSeidel,
            SolveMethod::DenseLu,
        ] {
            let opts = SolveOptions::with_method(method);
            let pi = solve(&matrix, &opts).unwrap();
            for (p, e) in pi.iter().zip(expected.iter()) {
                assert!((p - e).abs() < 1e-9, "{method:?}: {pi:?}");
            }
        }
    }

    #[test]
    fn dead_end_detected() {
        let matrix = CsrMatrix::from_rows(&[vec![(1, 1.0)], vec![]]);
        let err = solve(&matrix, &SolveOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::DeadEndState { index: 1 });
    }

    #[test]
    fn reducible_detected() {
        // 0 -> 1 but 1 never returns to 0.
        let matrix = CsrMatrix::from_rows(&[vec![(1, 1.0)], vec![(1, 1.0)]]);
        let err = solve(&matrix, &SolveOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::Reducible);
    }

    #[test]
    fn empty_chain_detected() {
        let err = solve(&CsrMatrix::empty(), &SolveOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::EmptyChain);
    }

    #[test]
    fn periodic_chain_converges_via_damping() {
        // Pure 2-cycle: power iteration oscillates without damping.
        let matrix = CsrMatrix::from_rows(&[vec![(1, 1.0)], vec![(0, 1.0)]]);
        let pi = solve(&matrix, &SolveOptions::default()).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn singular_reported_by_dense() {
        // Two disconnected self-loop states: reducible; with the check off,
        // the dense solver must either report singular or return *a*
        // stationary vector. Keep the irreducibility check on and assert
        // Reducible instead (documents the contract).
        let matrix = CsrMatrix::from_rows(&[vec![(0, 1.0)], vec![(1, 1.0)]]);
        let err = solve(&matrix, &SolveOptions::with_method(SolveMethod::DenseLu)).unwrap_err();
        assert_eq!(err, SolveError::Reducible);
    }
}
