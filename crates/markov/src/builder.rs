use std::collections::HashMap;
use std::hash::Hash;

use crate::csr::{CsrBuilder, CsrMatrix};
use crate::ctmc::Ctmc;
use crate::dtmc::Dtmc;

/// Incrementally assembles a Markov chain over an arbitrary state type.
///
/// States are interned on first use and mapped to dense indices; transitions
/// are accumulated as *rates* (repeated `add_rate` calls for the same pair
/// add up). The builder can then be finished either as a discrete-time chain
/// ([`ChainBuilder::build_dtmc`], rows normalized to probabilities) or as a
/// continuous-time chain ([`ChainBuilder::build_ctmc`], rates preserved).
///
/// ```
/// use seleth_markov::{ChainBuilder, SolveOptions};
/// let mut b = ChainBuilder::new();
/// b.add_rate(0u8, 1u8, 2.0);
/// b.add_rate(1u8, 0u8, 1.0);
/// let pi = b.build_ctmc().stationary(SolveOptions::default()).unwrap();
/// assert!((pi.prob(&1u8) - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ChainBuilder<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    rows: Vec<HashMap<usize, f64>>,
}

impl<S: Eq + Hash + Clone> ChainBuilder<S> {
    /// Create an empty builder.
    pub fn new() -> Self {
        ChainBuilder {
            states: Vec::new(),
            index: HashMap::new(),
            rows: Vec::new(),
        }
    }

    /// Number of distinct states registered so far.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if no state has been registered.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Intern `state`, returning its dense index. Registering a state without
    /// transitions is allowed (useful for pre-ordering states).
    pub fn intern(&mut self, state: S) -> usize {
        if let Some(&i) = self.index.get(&state) {
            return i;
        }
        let i = self.states.len();
        self.states.push(state.clone());
        self.index.insert(state, i);
        self.rows.push(HashMap::new());
        i
    }

    /// Add `rate` to the transition `from → to`. Rates for the same pair
    /// accumulate. Zero rates are accepted and ignored at build time.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite; transition rates must be
    /// well-formed at registration time so that build never fails.
    pub fn add_rate(&mut self, from: S, to: S, rate: f64) {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "transition rate must be finite and non-negative, got {rate}"
        );
        let fi = self.intern(from);
        let ti = self.intern(to);
        *self.rows[fi].entry(ti).or_insert(0.0) += rate;
    }

    /// Flatten the accumulated hash-indexed rows into contiguous CSR
    /// storage, column-sorted, dropping zero rates. This is the boundary
    /// where hashing ends: everything downstream is index arithmetic.
    fn into_parts(self) -> (Vec<S>, HashMap<S, usize>, CsrMatrix) {
        let ChainBuilder {
            states,
            index,
            rows,
        } = self;
        let nnz = rows.iter().map(HashMap::len).sum();
        let mut csr = CsrBuilder::with_capacity(rows.len(), nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend(row.into_iter().filter(|&(_, rate)| rate > 0.0));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            csr.push_row(&scratch);
        }
        (states, index, csr.finish())
    }

    /// Finish as a discrete-time chain: each row of accumulated rates is
    /// normalized into a probability distribution (the embedded jump chain).
    pub fn build_dtmc(self) -> Dtmc<S> {
        let (states, index, mut matrix) = self.into_parts();
        for i in 0..matrix.n_rows() {
            let values = matrix.row_values_mut(i);
            let total: f64 = values.iter().sum();
            if total > 0.0 {
                for v in values {
                    *v /= total;
                }
            }
        }
        Dtmc::from_parts(states, index, matrix)
    }

    /// Finish as a continuous-time chain, keeping rates as given.
    pub fn build_ctmc(self) -> Ctmc<S> {
        let (states, index, matrix) = self.into_parts();
        Ctmc::from_parts(states, index, matrix)
    }
}

impl<S: Eq + Hash + Clone> Default for ChainBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut b = ChainBuilder::new();
        assert_eq!(b.intern("a"), 0);
        assert_eq!(b.intern("b"), 1);
        assert_eq!(b.intern("a"), 0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rates_accumulate() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, 0.25);
        b.add_rate(0, 1, 0.25);
        b.add_rate(0, 0, 0.5);
        let d = b.build_dtmc();
        assert!((d.prob(&0, &1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rate_panics() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, f64::NAN);
    }

    #[test]
    fn zero_rates_dropped() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, 0.0);
        b.add_rate(0, 0, 1.0);
        let d = b.build_dtmc();
        assert_eq!(d.prob(&0, &1), 0.0);
        assert_eq!(d.prob(&0, &0), 1.0);
    }

    #[test]
    fn empty_builder_reports_empty() {
        let b: ChainBuilder<u32> = ChainBuilder::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
