//! Contiguous sparse-matrix storage (compressed sparse row).
//!
//! Every hot numeric kernel in this crate — power iteration, Gauss–Seidel,
//! the dense-LU fallback, first-passage sweeps — runs over a
//! [`CsrMatrix`]: three flat arrays (`row_ptr`, `col_idx`, `values`) laid
//! out contiguously in memory, so a row scan is a linear walk with no
//! pointer chasing and SpMV streams the whole matrix once. Hashing exists
//! only at the construction boundary ([`crate::ChainBuilder`] interns
//! states into dense indices, then emits rows in index order through
//! [`CsrBuilder`]).
//!
//! ```
//! use seleth_markov::csr::CsrBuilder;
//!
//! let mut b = CsrBuilder::new();
//! b.push_row(&[(0, 0.9), (1, 0.1)]);
//! b.push_row(&[(0, 0.5), (1, 0.5)]);
//! let m = b.finish();
//! assert_eq!(m.n_rows(), 2);
//! assert_eq!(m.nnz(), 4);
//! let mut out = vec![0.0; 2];
//! m.left_mul_vec(&[1.0, 0.0], &mut out);
//! assert_eq!(out, vec![0.9, 0.1]);
//! ```

/// A sparse matrix in compressed-sparse-row layout.
///
/// Row `i`'s non-zeros live at positions `row_ptr[i]..row_ptr[i + 1]` of
/// `col_idx`/`values`, in the column order they were pushed (the chain
/// builder pushes them column-sorted).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// The empty 0×0 matrix.
    pub fn empty() -> Self {
        CsrMatrix {
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from nested per-row entry lists (test/interop convenience; the
    /// builder path is [`CsrBuilder`]).
    pub fn from_rows(rows: &[Vec<(usize, f64)>]) -> Self {
        let mut b = CsrBuilder::with_capacity(rows.len(), rows.iter().map(Vec::len).sum());
        for row in rows {
            b.push_row(row);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// `true` if the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// The column indices and values of row `i` as parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Iterate row `i` as `(column, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row_entries(i);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// Number of entries stored in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The value at `(i, j)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row_entries(i);
        cols.iter().position(|&c| c == j).map_or(0.0, |k| vals[k])
    }

    /// Row-vector product `out = x · M` (the DTMC evolution kernel
    /// `π ← π P`): scatters each row `i` scaled by `x[i]` into `out`.
    ///
    /// Skips rows with `x[i] == 0`, which the power-iteration caller relies
    /// on for sparse initial distributions.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` is shorter than the row count.
    pub fn left_mul_vec(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n_rows();
        assert!(x.len() >= n && out.len() >= n, "vector shorter than matrix");
        out[..n].fill(0.0);
        for (i, &xi) in x.iter().enumerate().take(n) {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out[j] += xi * v;
            }
        }
    }

    /// The transposed matrix, with each transposed row's entries ordered by
    /// ascending original row index (the order a column scan of `self` in
    /// row order would visit them).
    pub fn transpose(&self) -> CsrMatrix {
        let n = self.n_rows();
        let mut counts = vec![0usize; n + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for k in 1..=n {
            counts[k] += counts[k - 1];
        }
        let row_ptr = counts.clone();
        let mut cursor = counts;
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for i in 0..n {
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let slot = cursor[j];
                cursor[j] += 1;
                col_idx[slot] = i;
                values[slot] = v;
            }
        }
        CsrMatrix {
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Mutably borrow the values of row `i` (used by the builder to
    /// normalize rows in place).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub(crate) fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        &mut self.values[span]
    }
}

/// Incremental row-by-row constructor for [`CsrMatrix`].
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        CsrBuilder {
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(rows: usize, nnz: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            row_ptr,
            col_idx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Append the next row's entries in the given order.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        for &(j, v) in entries {
            self.col_idx.push(j);
            self.values.push(v);
        }
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finish construction.
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(&[
            vec![(0, 0.9), (1, 0.1)],
            vec![(0, 0.5), (1, 0.5)],
            vec![(2, 1.0)],
        ])
    }

    #[test]
    fn shape_and_lookup() {
        let m = sample();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.row_len(2), 1);
        assert_eq!(m.get(0, 1), 0.1);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 2), 1.0);
    }

    #[test]
    fn row_iteration_preserves_order() {
        let m = sample();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 0.9), (1, 0.1)]);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(2, 1.0)]);
    }

    #[test]
    fn empty_rows_are_representable() {
        let m = CsrMatrix::from_rows(&[vec![(1, 1.0)], vec![], vec![(0, 2.0)]]);
        assert_eq!(m.row_len(1), 0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 2.0)]);
    }

    #[test]
    fn left_mul_matches_dense() {
        let m = sample();
        let x = [0.2, 0.3, 0.5];
        let mut out = [0.0; 3];
        m.left_mul_vec(&x, &mut out);
        // Dense reference.
        let want = [0.2 * 0.9 + 0.3 * 0.5, 0.2 * 0.1 + 0.3 * 0.5, 0.5];
        for (o, w) in out.iter().zip(want.iter()) {
            assert!((o - w).abs() < 1e-15);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.nnz(), m.nnz());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), t.get(j, i), "({i},{j})");
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_orders_by_source_row() {
        // Column 0 receives entries from rows 0 and 1, in that order.
        let t = sample().transpose();
        let col0: Vec<_> = t.row(0).collect();
        assert_eq!(col0, vec![(0, 0.9), (1, 0.5)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty();
        assert!(m.is_empty());
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
