use std::collections::HashMap;
use std::hash::Hash;

use crate::csr::{CsrBuilder, CsrMatrix};
use crate::distribution::Distribution;
use crate::dtmc::Dtmc;
use crate::error::SolveError;
use crate::solve::{self, SolveOptions};

/// A continuous-time Markov chain described by transition *rates*.
///
/// The stationary distribution is computed by uniformization: with `Λ` an
/// upper bound on the total exit rate of any state, the DTMC
/// `P = I + Q/Λ` has the same stationary distribution as the CTMC.
///
/// Note that this differs from the *embedded jump chain* (obtained from
/// [`crate::ChainBuilder::build_dtmc`]) whenever exit rates are not uniform
/// across states; the selfish-mining chain of the paper has uniform total
/// rate `α + β = 1`, in which case the two coincide.
///
/// ```
/// use seleth_markov::{ChainBuilder, SolveOptions};
/// let mut b = ChainBuilder::new();
/// // Machine: working -> broken at rate 0.1, repaired at rate 1.0.
/// b.add_rate("up", "down", 0.1);
/// b.add_rate("down", "up", 1.0);
/// let pi = b.build_ctmc().stationary(SolveOptions::default()).unwrap();
/// assert!((pi.prob(&"up") - 1.0 / 1.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Ctmc<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    matrix: CsrMatrix,
}

impl<S: Eq + Hash + Clone> Ctmc<S> {
    pub(crate) fn from_parts(states: Vec<S>, index: HashMap<S, usize>, matrix: CsrMatrix) -> Self {
        Ctmc {
            states,
            index,
            matrix,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states in dense-index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Transition rate `from → to` (0 if absent). Self-loop rates are
    /// ignored by the CTMC semantics but preserved here for inspection.
    pub fn rate(&self, from: &S, to: &S) -> f64 {
        let (Some(&fi), Some(&ti)) = (self.index.get(from), self.index.get(to)) else {
            return 0.0;
        };
        self.matrix.get(fi, ti)
    }

    /// Total exit rate of `state` (excluding any self-loop).
    pub fn exit_rate(&self, state: &S) -> f64 {
        let Some(&i) = self.index.get(state) else {
            return 0.0;
        };
        self.matrix
            .row(i)
            .filter(|&(j, _)| j != i)
            .map(|(_, r)| r)
            .sum()
    }

    /// Uniformize into a DTMC with the same stationary distribution.
    ///
    /// Uses `Λ = 1.1 × max exit rate` (the slack guarantees aperiodicity by
    /// giving every state a self-loop).
    pub fn uniformized(&self) -> Dtmc<S> {
        let n = self.matrix.n_rows();
        let max_exit = self
            .states
            .iter()
            .map(|s| self.exit_rate(s))
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let lambda = 1.1 * max_exit;
        let mut builder = CsrBuilder::with_capacity(n, self.matrix.nnz() + n);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..n {
            scratch.clear();
            scratch.extend(
                self.matrix
                    .row(i)
                    .filter(|&(j, _)| j != i)
                    .map(|(j, r)| (j, r / lambda)),
            );
            let exit: f64 = scratch.iter().map(|&(_, p)| p).sum();
            scratch.push((i, 1.0 - exit));
            scratch.sort_unstable_by_key(|&(j, _)| j);
            builder.push_row(&scratch);
        }
        Dtmc::from_parts(self.states.clone(), self.index.clone(), builder.finish())
    }

    /// Compute the stationary distribution of the CTMC (via uniformization).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] under the same conditions as
    /// [`Dtmc::stationary`].
    pub fn stationary(&self, opts: SolveOptions) -> Result<Distribution<S>, SolveError> {
        // Validate on the raw structure first so dead ends are reported in
        // terms of the user's chain, not the uniformized one (which gives
        // every state a self-loop).
        if self.matrix.is_empty() {
            return Err(SolveError::EmptyChain);
        }
        for i in 0..self.matrix.n_rows() {
            if self.matrix.row(i).all(|(j, _)| j == i) {
                return Err(SolveError::DeadEndState { index: i });
            }
        }
        if opts.check_irreducible {
            solve::check_irreducible(&self.matrix)?;
        }
        let mut inner_opts = opts;
        inner_opts.check_irreducible = false;
        self.uniformized().stationary(inner_opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChainBuilder;

    #[test]
    fn exit_rate_ignores_self_loops() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 0, 5.0);
        b.add_rate(0, 1, 2.0);
        b.add_rate(1, 0, 1.0);
        let c = b.build_ctmc();
        assert_eq!(c.exit_rate(&0), 2.0);
        assert_eq!(c.rate(&0, &0), 5.0);
    }

    #[test]
    fn nonuniform_rates_differ_from_jump_chain() {
        // up->down rate 0.1, down->up rate 1.0. CTMC stationary: up = 10/11.
        // The embedded jump chain alternates, stationary (1/2, 1/2).
        let mut b = ChainBuilder::new();
        b.add_rate("up", "down", 0.1);
        b.add_rate("down", "up", 1.0);
        let ctmc = b.clone().build_ctmc();
        let pi_ct = ctmc.stationary(SolveOptions::default()).unwrap();
        assert!((pi_ct.prob(&"up") - 10.0 / 11.0).abs() < 1e-9);
        let pi_jump = b.build_dtmc().stationary(SolveOptions::default()).unwrap();
        assert!((pi_jump.prob(&"up") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dead_end_is_reported_pre_uniformization() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, 1.0);
        b.add_rate(1, 1, 3.0); // only a self-loop: absorbing
        let c = b.build_ctmc();
        let err = c.stationary(SolveOptions::default()).unwrap_err();
        assert_eq!(err, SolveError::DeadEndState { index: 1 });
    }

    #[test]
    fn birth_death_matches_closed_form() {
        // M/M/1/K as a CTMC directly (no manual uniformization needed).
        let (lambda, mu, k) = (2.0, 3.0, 12usize);
        let mut b = ChainBuilder::new();
        for i in 0..k {
            b.add_rate(i, i + 1, lambda);
            b.add_rate(i + 1, i, mu);
        }
        let pi = b.build_ctmc().stationary(SolveOptions::default()).unwrap();
        let rho: f64 = lambda / mu;
        let z: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for i in 0..=k {
            assert!((pi.prob(&i) - rho.powi(i as i32) / z).abs() < 1e-9);
        }
    }
}
