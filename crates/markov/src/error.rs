use std::error::Error;
use std::fmt;

/// Error returned by stationary-distribution solvers.
///
/// ```
/// use seleth_markov::SolveError;
/// let err = SolveError::NotConverged { iterations: 10, residual: 0.5 };
/// assert!(err.to_string().contains("did not converge"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The chain has no states, so there is no distribution to compute.
    EmptyChain,
    /// Some state has no outgoing transitions; the chain cannot be
    /// stationary-solved as given (add a self-loop for absorbing states).
    DeadEndState {
        /// Dense index of the offending state.
        index: usize,
    },
    /// The chain is reducible: not every state can reach every other state,
    /// so the stationary distribution is not unique.
    Reducible,
    /// An iterative solver exhausted its iteration budget before reaching the
    /// requested tolerance.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// L1 residual at the final iteration.
        residual: f64,
    },
    /// A transition was registered with a non-finite or negative rate.
    InvalidRate {
        /// The offending rate value.
        rate: f64,
    },
    /// The dense linear solver hit a (numerically) singular pivot.
    Singular,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyChain => write!(f, "chain has no states"),
            SolveError::DeadEndState { index } => {
                write!(f, "state {index} has no outgoing transitions")
            }
            SolveError::Reducible => {
                write!(
                    f,
                    "chain is reducible; stationary distribution is not unique"
                )
            }
            SolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
            SolveError::InvalidRate { rate } => {
                write!(
                    f,
                    "transition rate {rate} is not a finite non-negative number"
                )
            }
            SolveError::Singular => write!(f, "linear system is numerically singular"),
        }
    }
}

impl Error for SolveError {}
