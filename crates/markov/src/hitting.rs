//! First-passage analysis: expected hitting times and hit-before
//! probabilities.
//!
//! Used by the selfish-mining analysis for *attack-cycle* statistics — the
//! expected number of blocks between consensus points is the expected
//! return time to `(0,0)`, which renewal theory ties back to the
//! stationary distribution (`E[return] = 1/π₀₀`), giving an independent
//! cross-check of the solvers.

use std::collections::VecDeque;
use std::hash::Hash;

use crate::dtmc::Dtmc;
use crate::error::SolveError;

/// Numerical options for the iterative first-passage solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HittingOptions {
    /// Convergence tolerance on the max-norm between sweeps.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for HittingOptions {
    fn default() -> Self {
        HittingOptions {
            tolerance: 1e-12,
            max_iterations: 1_000_000,
        }
    }
}

impl<S: Eq + Hash + Clone> Dtmc<S> {
    /// Expected number of steps to first reach any state of `targets`,
    /// from every state (entry is `None` for states that cannot reach the
    /// target set; `Some(0.0)` for the targets themselves).
    ///
    /// Solves `h_i = 1 + Σ_j P_ij h_j` (over non-target `i`) by
    /// Gauss–Seidel sweeps restricted to the states that can reach the
    /// targets.
    ///
    /// # Errors
    ///
    /// - [`SolveError::EmptyChain`] if `targets` is empty or contains no
    ///   known state.
    /// - [`SolveError::NotConverged`] if the sweep budget is exhausted
    ///   (e.g. for chains where the expected hitting time is infinite even
    ///   though the target is reachable).
    ///
    /// ```
    /// use seleth_markov::{ChainBuilder, hitting::HittingOptions};
    /// // Fair coin flips until the first heads: E = 2.
    /// let mut b = ChainBuilder::new();
    /// b.add_rate("flip", "heads", 0.5);
    /// b.add_rate("flip", "flip", 0.5);
    /// b.add_rate("heads", "heads", 1.0);
    /// let chain = b.build_dtmc();
    /// let h = chain.expected_hitting_times(&["heads"], HittingOptions::default()).unwrap();
    /// let i = chain.index_of(&"flip").unwrap();
    /// assert!((h[i].unwrap() - 2.0).abs() < 1e-9);
    /// ```
    pub fn expected_hitting_times(
        &self,
        targets: &[S],
        opts: HittingOptions,
    ) -> Result<Vec<Option<f64>>, SolveError> {
        let n = self.len();
        let mut is_target = vec![false; n];
        let mut any = false;
        for t in targets {
            if let Some(i) = self.index_of(t) {
                is_target[i] = true;
                any = true;
            }
        }
        if !any {
            return Err(SolveError::EmptyChain);
        }
        let reach = self.can_reach(&is_target);

        let mut h = vec![0.0f64; n];
        for it in 0..opts.max_iterations {
            let mut delta = 0.0f64;
            for i in 0..n {
                if is_target[i] || !reach[i] {
                    continue;
                }
                let mut acc = 1.0;
                let mut self_p = 0.0;
                for (s, p) in self.row(i) {
                    if s == i {
                        self_p = p;
                    } else if reach[s] && !is_target[s] {
                        acc += p * h[s];
                    }
                    // Targets contribute h = 0; unreachable successors are
                    // impossible here (they would make i unreachable too,
                    // unless i also leads to the target — in which case the
                    // expected time is infinite and we will fail to
                    // converge, which is the correct signal).
                    if !reach[s] && !is_target[s] && p > 0.0 {
                        // Escaping to a non-returning component ⇒ infinite
                        // expectation: poison the value so it diverges.
                        acc += p * 1e18;
                    }
                }
                let new = if self_p < 1.0 {
                    acc / (1.0 - self_p)
                } else {
                    f64::INFINITY
                };
                delta = delta.max((new - h[i]).abs());
                h[i] = new;
            }
            if delta < opts.tolerance {
                return Ok((0..n)
                    .map(|i| {
                        if is_target[i] {
                            Some(0.0)
                        } else if reach[i] && h[i] < 1e17 {
                            Some(h[i])
                        } else {
                            None
                        }
                    })
                    .collect());
            }
            if it == opts.max_iterations - 1 {
                break;
            }
        }
        Err(SolveError::NotConverged {
            iterations: opts.max_iterations,
            residual: f64::NAN,
        })
    }

    /// Probability, from each state, of reaching `a` before `b`.
    ///
    /// Solves the harmonic system `p_i = Σ_j P_ij p_j` with boundary
    /// `p_a = 1`, `p_b = 0`.
    ///
    /// # Errors
    ///
    /// - [`SolveError::EmptyChain`] if `a` or `b` is not a state of the
    ///   chain.
    /// - [`SolveError::NotConverged`] if the sweep budget is exhausted.
    ///
    /// ```
    /// use seleth_markov::{classic, hitting::HittingOptions};
    /// // Gambler's ruin on a fair M/M/1/K queue: linear in the start.
    /// let q = classic::mm1k(1.0, 1.0, 10);
    /// let p = q.probability_hits_before(&10, &0, HittingOptions::default()).unwrap();
    /// let i = q.index_of(&5).unwrap();
    /// assert!((p[i] - 0.5).abs() < 1e-9);
    /// ```
    pub fn probability_hits_before(
        &self,
        a: &S,
        b: &S,
        opts: HittingOptions,
    ) -> Result<Vec<f64>, SolveError> {
        let (Some(ia), Some(ib)) = (self.index_of(a), self.index_of(b)) else {
            return Err(SolveError::EmptyChain);
        };
        let n = self.len();
        let mut p = vec![0.0f64; n];
        p[ia] = 1.0;
        for _ in 0..opts.max_iterations {
            let mut delta = 0.0f64;
            for i in 0..n {
                if i == ia || i == ib {
                    continue;
                }
                let mut acc = 0.0;
                let mut self_p = 0.0;
                for (s, q) in self.row(i) {
                    if s == i {
                        self_p = q;
                    } else {
                        acc += q * p[s];
                    }
                }
                let new = if self_p < 1.0 {
                    acc / (1.0 - self_p)
                } else {
                    p[i]
                };
                delta = delta.max((new - p[i]).abs());
                p[i] = new;
            }
            if delta < opts.tolerance {
                return Ok(p);
            }
        }
        Err(SolveError::NotConverged {
            iterations: opts.max_iterations,
            residual: f64::NAN,
        })
    }

    /// Expected return time to `state`: one step plus the expected hitting
    /// time of `state` from the one-step distribution out of it. For an
    /// irreducible positive-recurrent chain this equals `1 / π(state)`
    /// (Kac's formula).
    ///
    /// # Errors
    ///
    /// As [`Dtmc::expected_hitting_times`].
    pub fn expected_return_time(&self, state: &S, opts: HittingOptions) -> Result<f64, SolveError> {
        let Some(i0) = self.index_of(state) else {
            return Err(SolveError::EmptyChain);
        };
        let h = self.expected_hitting_times(std::slice::from_ref(state), opts)?;
        let mut acc = 1.0;
        for (s, p) in self.row(i0) {
            if s != i0 {
                match h[s] {
                    Some(v) => acc += p * v,
                    None => return Err(SolveError::Reducible),
                }
            }
        }
        Ok(acc)
    }

    /// BFS on the reverse graph: which states can reach the target set.
    fn can_reach(&self, is_target: &[bool]) -> Vec<bool> {
        let n = self.len();
        let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, _) in self.row(i) {
                reverse[j].push(i);
            }
        }
        let mut seen = vec![false; n];
        let mut queue: VecDeque<usize> = (0..n)
            .filter(|&i| is_target[i])
            .inspect(|&i| seen[i] = true)
            .collect();
        while let Some(i) = queue.pop_front() {
            for &j in &reverse[i] {
                if !seen[j] {
                    seen[j] = true;
                    queue.push_back(j);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classic, ChainBuilder, SolveOptions};

    #[test]
    fn gamblers_ruin_probabilities() {
        // Biased walk on 0..=N with up-probability p: P(hit N before 0 | i)
        // = (1 - r^i) / (1 - r^N) with r = q/p.
        let (lambda, mu, n) = (2.0, 3.0, 8usize);
        let q = classic::mm1k(lambda, mu, n);
        let probs = q
            .probability_hits_before(&n, &0, HittingOptions::default())
            .unwrap();
        let r: f64 = mu / lambda;
        for i in 1..n {
            let want = (1.0 - r.powi(i as i32)) / (1.0 - r.powi(n as i32));
            let got = probs[q.index_of(&i).unwrap()];
            assert!((got - want).abs() < 1e-9, "i={i}: got {got}, want {want}");
        }
    }

    #[test]
    fn symmetric_walk_hitting_times() {
        // Symmetric random walk absorbed at both ends: E[T | i] = i (N − i).
        let n = 10usize;
        let mut b = ChainBuilder::new();
        for i in 1..n {
            b.add_rate(i, i - 1, 0.5);
            b.add_rate(i, i + 1, 0.5);
        }
        b.add_rate(0, 0, 1.0);
        b.add_rate(n, n, 1.0);
        let chain = b.build_dtmc();
        let h = chain
            .expected_hitting_times(&[0, n], HittingOptions::default())
            .unwrap();
        for i in 1..n {
            let got = h[chain.index_of(&i).unwrap()].unwrap();
            let want = (i * (n - i)) as f64;
            assert!((got - want).abs() < 1e-7, "i={i}: got {got}, want {want}");
        }
    }

    #[test]
    fn kac_formula_on_queue() {
        let q = classic::mm1k(1.0, 2.0, 12);
        let pi = q.stationary(SolveOptions::default()).unwrap();
        for state in [0usize, 3, 8] {
            let ret = q
                .expected_return_time(&state, HittingOptions::default())
                .unwrap();
            let want = 1.0 / pi.prob(&state);
            assert!(
                (ret - want).abs() / want < 1e-8,
                "state {state}: {ret} vs {want}"
            );
        }
    }

    #[test]
    fn unreachable_targets_are_none() {
        // 0 → 1 → 1; target 0 unreachable from 1.
        let mut b = ChainBuilder::new();
        b.add_rate(0, 1, 1.0);
        b.add_rate(1, 1, 1.0);
        let chain = b.build_dtmc();
        let h = chain
            .expected_hitting_times(&[0], HittingOptions::default())
            .unwrap();
        assert_eq!(h[chain.index_of(&0).unwrap()], Some(0.0));
        assert_eq!(h[chain.index_of(&1).unwrap()], None);
    }

    #[test]
    fn unknown_target_errors() {
        let mut b = ChainBuilder::new();
        b.add_rate(0, 0, 1.0);
        let chain = b.build_dtmc();
        assert!(chain
            .expected_hitting_times(&[42], HittingOptions::default())
            .is_err());
        assert!(chain
            .probability_hits_before(&0, &42, HittingOptions::default())
            .is_err());
    }

    #[test]
    fn absorbing_self_loop_target_trivial() {
        let mut b = ChainBuilder::new();
        b.add_rate("a", "b", 0.3);
        b.add_rate("a", "a", 0.7);
        b.add_rate("b", "b", 1.0);
        let chain = b.build_dtmc();
        let h = chain
            .expected_hitting_times(&["b"], HittingOptions::default())
            .unwrap();
        let ia = chain.index_of(&"a").unwrap();
        // Geometric with success 0.3: mean 1/0.3.
        assert!((h[ia].unwrap() - 1.0 / 0.3).abs() < 1e-9);
    }
}
