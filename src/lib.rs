//! # selfish-ethereum
//!
//! A from-scratch Rust reproduction of **“Selfish Mining in Ethereum”**
//! (Jianyu Niu & Chen Feng, ICDCS 2019, arXiv:1901.04620): the
//! 2-dimensional Markov analysis of selfish mining under Ethereum's uncle
//! and nephew rewards, together with the Monte-Carlo simulator that
//! validates it.
//!
//! This crate is a facade over the four workspace crates:
//!
//! - [`markov`] (`seleth-markov`) — generic Markov-chain machinery:
//!   builders, CTMC/DTMC, stationary-distribution solvers.
//! - [`chain`] (`seleth-chain`) — the blockchain substrate: block tree,
//!   fork choice, regular/uncle/stale classification, reward schedules.
//! - [`core`] (`seleth-core`) — the paper's contribution: the `(Ls, Lh)`
//!   Markov process, closed-form and numeric stationary distributions,
//!   Appendix-B probabilistic reward tracking, revenue and threshold
//!   analysis, the Eyal–Sirer Bitcoin baseline.
//! - [`sim`] (`seleth-sim`) — the discrete-event selfish-mining simulator
//!   (Algorithm 1 over a real block tree).
//! - [`mdp`] (`seleth-mdp`) — *optimal* withholding strategies via
//!   average-reward MDPs (the future-work direction the paper points at).
//! - [`zoo`] (`seleth-zoo`) — the strategy zoo: parametric hand-written
//!   strategy families (SM1, stubborn variants) lowered into policy
//!   artifacts, plus a parallel multi-strategist tournament harness.
//! - [`obs`] (`seleth-obs`) — zero-dependency telemetry: the [`Recorder`]
//!   trait (no-op by default), per-worker shards with deterministic
//!   merges, and the study-profile renderer behind `perf_report`.
//!
//! [`Recorder`]: obs::Recorder
//!
//! # The paper in one example
//!
//! How much does a pool with 30% of Ethereum's hash power earn by mining
//! selfishly, and does the theory agree with simulation?
//!
//! ```
//! use selfish_ethereum::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Theory: solve the 2-D Markov model.
//! let params = ModelParams::new(0.30, 0.5, RewardSchedule::ethereum())?;
//! let theory = Analysis::new(&params)?.revenue();
//! let us_theory = theory.absolute_pool(Scenario::RegularRate);
//!
//! // Honest mining would earn exactly α = 0.30; selfish mining beats it.
//! assert!(us_theory > 0.30);
//!
//! // Simulation: run Algorithm 1 over an actual block tree.
//! let config = SimConfig::builder().alpha(0.30).gamma(0.5).blocks(50_000).seed(1).build()?;
//! let us_sim = Simulation::new(config).run().absolute_pool(Scenario::RegularRate);
//! assert!((us_sim - us_theory).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must degrade with typed errors, never a panic, on
// untrusted input; invariant violations use `expect` with a message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub use seleth_chain as chain;
pub use seleth_core as core;
pub use seleth_markov as markov;
pub use seleth_mdp as mdp;
pub use seleth_net as net;
pub use seleth_obs as obs;
pub use seleth_sim as sim;
pub use seleth_zoo as zoo;

/// One-stop imports for the common workflow: model parameters in, revenue
/// and thresholds out, simulation alongside.
pub mod prelude {
    pub use seleth_chain::{
        BlockTree, MinerId, NephewReward, RewardSchedule, Scenario, UncleReward,
    };
    pub use seleth_core::threshold::{profitability_threshold, ThresholdOptions};
    pub use seleth_core::{Analysis, AnalysisError, ModelParams, RevenueBreakdown, State};
    pub use seleth_mdp::{
        Action, Fork, MdpConfig, PolicyTable, RewardModel, SolveStats, StateSpace, ValueCache,
        MATCH_D_CAP,
    };
    pub use seleth_net::{
        Latency, Link, NetError, NodeRole, Propagation, Topology, TopologyBuilder,
    };
    pub use seleth_obs::{
        evaluate_trend, parse_history, trace_diff, Divergence, Event, EventKind, EventLog,
        NoopRecorder, Recorder, Stopwatch, Telemetry, TelemetryShard, TraceLog, TrendReport,
        TrendRow,
    };
    pub use seleth_sim::delay::{
        DelayConfig, DelayCounters, DelayReport, DelaySimulation, MinerStrategy, PropagationModel,
    };
    pub use seleth_sim::{
        delay_divergence, diagnose, engine_divergence, explain_divergence, multi, record_delay_run,
        record_engine_run, FaultPlan, FaultPlanBuilder, PoolStrategy, SimConfig, SimReport,
        Simulation, TRACE_ON_FAIL_ENV,
    };
    pub use seleth_zoo::{
        sm1_closed_form, Cell, Family, StrategyRegistry, Tournament, TournamentConfig,
    };
}
