#!/usr/bin/env bash
# Workspace CI: build, test, lint, format. Mirrors what the tier-1 driver
# runs (build + root-package tests) and extends it to every crate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace, trace-dump-on-failure armed)"
# SELETH_TRACE_ON_FAIL points the first-divergence diagnostics at a
# scratch dir: when a bit-identity suite trips, the failure message
# carries the first divergent event and both event traces land there
# as JSON lines for offline diffing.
SELETH_TRACE_ON_FAIL="$(mktemp -d)" cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> policy artifact-compat audit (legality + byte-identical re-save)"
# Loads every committed results/policies/*.json through the v2 API:
# unreadable, illegal or non-byte-stable tables fail the build. No
# solving, no simulation, no network.
SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-bench --bin optimal_sim -- --audit

echo "==> optimal_sim agreement gate (fast settings)"
# Small runs/blocks/truncation keep this under a minute; results go to a
# scratch dir so the committed full-size artifacts aren't overwritten.
SELETH_RESULTS="$(mktemp -d)" SELETH_RUNS=4 SELETH_BLOCKS=20000 SELETH_MDP_LEN=24 \
    cargo run --release -q -p seleth-bench --bin optimal_sim

echo "==> optimal_delay smoke gate (strategic delay path)"
# Replays a committed artifact through the strategic delay engine: one
# Bitcoin point, two delays, small budgets. Output goes to a scratch dir;
# the committed artifacts are read via SELETH_POLICIES.
SELETH_RESULTS="$(mktemp -d)" SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-bench --bin optimal_delay -- --smoke

echo "==> optimal_closed_loop smoke gate (race-window artifacts vs the zero-delay optimum)"
# Replays the committed truncation-200 delay-aware artifact against the
# zero-delay baseline at its design delay, small budgets, loosened
# tolerance. Reads committed artifacts (no solving in CI); output goes to
# a scratch dir.
SELETH_RESULTS="$(mktemp -d)" SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-bench --bin optimal_closed_loop -- --smoke

echo "==> strategy_zoo smoke gate (zoo tournament + multi-strategist matchups)"
# One (α, γ) point, duopoly split, two delays, one matchup cell, small
# budgets; gates SM1 against its closed form and the optimal artifact
# against every hand-written family.
SELETH_RESULTS="$(mktemp -d)" SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-zoo --bin strategy_zoo -- --smoke

echo "==> chaos_study smoke gate (deterministic fault injection)"
# Zero-delay anchor plus a handful of fault cells (loss, churn +
# partition) under small budgets; gates the anchor against the
# artifact's rho*. Output goes to a scratch dir, which the perf_report
# gate below then renders: a fresh study JSON (with trace) must flow
# through the profiler end to end.
CHAOS_SCRATCH="$(mktemp -d)"
SELETH_RESULTS="$CHAOS_SCRATCH" SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-zoo --bin chaos_study -- --smoke \
    --trace "$CHAOS_SCRATCH/chaos_trace.jsonl"

echo "==> topology_study smoke gate (peer-graph gossip propagation)"
# Uniform anchor, the bit-identity-gated complete graph, and the
# hub/leaf attacker-position pair under small budgets; gates the
# complete graph bitwise against the uniform engine and the positional
# revenue spread against the smoke noise floor.
SELETH_RESULTS="$(mktemp -d)" SELETH_POLICIES=results/policies \
    cargo run --release -q -p seleth-zoo --bin topology_study -- --smoke

echo "==> perf_report smoke gate (telemetry renders end to end)"
# The fresh smoke output and every committed study JSON must render;
# the trace file must be non-empty JSON lines.
cargo run --release -q -p seleth-bench --bin perf_report -- \
    "$CHAOS_SCRATCH/chaos_study_smoke.json" > /dev/null
test -s "$CHAOS_SCRATCH/chaos_trace.jsonl"
SELETH_RESULTS=results \
    cargo run --release -q -p seleth-bench --bin perf_report > /dev/null

echo "==> perf_trend regression gate (smoke: first-run ledger tolerated)"
# Compares the latest BENCH_history.jsonl row per bench bin against the
# most recent earlier row from a comparable host and fails on
# noise-banded regressions; --smoke passes when the ledger is still
# seeding (absent or fewer than two comparable rows).
SELETH_RESULTS=results \
    cargo run --release -q -p seleth-bench --bin perf_report -- --trend --smoke

echo "CI OK"
