#!/usr/bin/env bash
# Workspace CI: build, test, lint, format. Mirrors what the tier-1 driver
# runs (build + root-package tests) and extends it to every crate.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
