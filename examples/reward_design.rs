//! Designing a selfish-mining-resistant uncle reward (Section VI).
//!
//! The paper's insight: the pool's uncles are always referenced at
//! distance 1 (earning the maximum `7/8` under Byzantium's `Ku(·)`),
//! while honest uncles drift to longer, lower-paying distances as the
//! attacker grows. Flattening the schedule — same reward at every
//! distance — removes the attacker's edge. This example scores arbitrary
//! candidate schedules, including a custom table, by the profitability
//! threshold they induce.
//!
//! Run with:
//! ```text
//! cargo run --release --example reward_design
//! ```

use selfish_ethereum::chain::{NephewReward, UncleReward};
use selfish_ethereum::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gamma = 0.5;
    let opts = ThresholdOptions::default();

    let candidates: Vec<(&str, RewardSchedule)> = vec![
        ("Byzantium Ku(d)=(8-d)/8", RewardSchedule::ethereum()),
        ("flat Ku = 4/8 (paper)", RewardSchedule::fixed_uncle(0.5)),
        ("flat Ku = 2/8", RewardSchedule::fixed_uncle(0.25)),
        (
            "no uncle rewards (Bitcoin-like)",
            RewardSchedule::custom(1.0, UncleReward::Zero, NephewReward::Zero, 0, Some(0)),
        ),
        // A custom increasing-with-distance table: pays *more* for distant
        // uncles, compensating honest miners for racing a long private
        // branch.
        (
            "increasing table 2/8..7/8",
            RewardSchedule::custom(
                1.0,
                UncleReward::Table(vec![0.25, 0.35, 0.45, 0.55, 0.65, 0.875]),
                NephewReward::Ethereum,
                6,
                None,
            ),
        ),
    ];

    println!("Uncle reward design vs selfish-mining threshold (γ = {gamma})\n");
    println!(
        "{:<34} {:>11} {:>11} {:>13}",
        "schedule", "α* scen.1", "α* scen.2", "honest uncle $"
    );
    for (name, schedule) in &candidates {
        let t1 = profitability_threshold(gamma, schedule, Scenario::RegularRate, opts)?;
        let t2 = profitability_threshold(gamma, schedule, Scenario::RegularPlusUncleRate, opts)?;
        // How well the schedule compensates honest miners when attacked at
        // α = 0.3: their uncle+nephew revenue rate.
        let params = ModelParams::new(0.3, gamma, schedule.clone())?;
        let rev = Analysis::new(&params)?.revenue();
        let honest_side = rev.honest.uncle_reward + rev.honest.nephew_reward;
        println!(
            "{name:<34} {:>11} {:>11} {:>13.4}",
            fmt(t1),
            fmt(t2),
            honest_side
        );
    }

    println!("\nReading: higher α* = harder to attack; higher honest uncle revenue =");
    println!("better centralization medicine. Byzantium's Ku(·) maximizes the attacker's");
    println!("subsidy; the flat 4/8 trades a little honest compensation for a 3x higher");
    println!("threshold (0.054 → 0.163), matching Section VI of the paper.");
    Ok(())
}

fn fmt(t: Option<f64>) -> String {
    t.map_or("≥0.5".into(), |v| format!("{v:.3}"))
}
