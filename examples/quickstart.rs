//! Quickstart: the paper's core question in 60 lines.
//!
//! For a pool with α of the hash power and network capability γ, is selfish
//! mining profitable in Ethereum — and how does that compare to Bitcoin?
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [alpha] [gamma]
//! ```

use selfish_ethereum::core::bitcoin;
use selfish_ethereum::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let alpha: f64 = args.next().map_or(Ok(0.30), |s| s.parse())?;
    let gamma: f64 = args.next().map_or(Ok(0.5), |s| s.parse())?;

    println!("Selfish mining in Ethereum: α = {alpha}, γ = {gamma}\n");

    // 1. Solve the 2-D Markov model under the Byzantium reward schedule.
    let params = ModelParams::new(alpha, gamma, RewardSchedule::ethereum())?;
    let analysis = Analysis::new(&params)?;
    let revenue = analysis.revenue();

    println!("Block-type rates (per mined block):");
    println!(
        "  regular {:.4}  uncle {:.4}  stale {:.4}",
        revenue.regular_rate, revenue.uncle_rate, revenue.stale_rate
    );

    println!("\nPool revenue rates   (static / uncle / nephew):");
    println!(
        "  {:.4} / {:.4} / {:.4}",
        revenue.pool.static_reward, revenue.pool.uncle_reward, revenue.pool.nephew_reward
    );
    println!("Honest revenue rates (static / uncle / nephew):");
    println!(
        "  {:.4} / {:.4} / {:.4}",
        revenue.honest.static_reward, revenue.honest.uncle_reward, revenue.honest.nephew_reward
    );

    let us1 = revenue.absolute_pool(Scenario::RegularRate);
    let us2 = revenue.absolute_pool(Scenario::RegularPlusUncleRate);
    println!("\nAbsolute pool revenue Us (honest mining would earn {alpha:.3}):");
    println!(
        "  scenario 1 (pre-EIP100 difficulty): {us1:.4}  → {}",
        verdict(us1, alpha)
    );
    println!(
        "  scenario 2 (EIP100 difficulty):     {us2:.4}  → {}",
        verdict(us2, alpha)
    );

    // 2. Cross-check with a Monte-Carlo run of Algorithm 1.
    let config = SimConfig::builder()
        .alpha(alpha)
        .gamma(gamma)
        .blocks(100_000)
        .seed(1)
        .build()?;
    let report = Simulation::new(config).run();
    println!(
        "\nSimulation (100k blocks): Us = {:.4} (theory {us1:.4})",
        report.absolute_pool(Scenario::RegularRate)
    );

    // 3. Context: where the thresholds sit.
    let t1 = profitability_threshold(
        gamma,
        &RewardSchedule::ethereum(),
        Scenario::RegularRate,
        ThresholdOptions::default(),
    )?;
    println!("\nProfitability threshold at γ = {gamma}:");
    println!(
        "  Ethereum (scenario 1): α* = {}",
        t1.map_or("none below 0.5".into(), |t| format!("{t:.3}"))
    );
    println!(
        "  Bitcoin (Eyal–Sirer):  α* = {:.3}",
        bitcoin::eyal_sirer_threshold(gamma)
    );
    Ok(())
}

fn verdict(us: f64, alpha: f64) -> &'static str {
    if us > alpha {
        "selfish mining PROFITABLE"
    } else {
        "honest mining better"
    }
}
