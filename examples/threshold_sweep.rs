//! Security landscape: profitability threshold across the (γ, schedule)
//! plane, and what it means for an attacker with given resources.
//!
//! A compact version of Fig. 10 plus an "attack planner": given a pool
//! size α, find the minimum network-level capability γ it needs before
//! selfish mining pays off.
//!
//! Run with:
//! ```text
//! cargo run --release --example threshold_sweep [alpha]
//! ```

use selfish_ethereum::core::bitcoin;
use selfish_ethereum::core::threshold::excess_revenue;
use selfish_ethereum::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alpha: f64 = std::env::args().nth(1).map_or(Ok(0.15), |s| s.parse())?;

    // Compact Fig. 10.
    println!("Profitability thresholds α* (Ethereum Ku(·)):\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "γ", "bitcoin", "eth scen.1", "eth scen.2"
    );
    let opts = ThresholdOptions::default();
    for gamma in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let btc = bitcoin::eyal_sirer_threshold(gamma);
        let s1 = profitability_threshold(
            gamma,
            &RewardSchedule::ethereum(),
            Scenario::RegularRate,
            opts,
        )?;
        let s2 = profitability_threshold(
            gamma,
            &RewardSchedule::ethereum(),
            Scenario::RegularPlusUncleRate,
            opts,
        )?;
        println!("{gamma:>6.1} {btc:>10.3} {:>12} {:>12}", fmt(s1), fmt(s2));
    }

    // Attack planner: minimum γ for a pool of size alpha, per scenario.
    println!("\nAttack planner for a pool with α = {alpha}:");
    for (name, scenario) in [
        ("scenario 1 (pre-EIP100)", Scenario::RegularRate),
        ("scenario 2 (EIP100)", Scenario::RegularPlusUncleRate),
    ] {
        let mut needed = None;
        for k in 0..=40 {
            let gamma = k as f64 / 40.0;
            if excess_revenue(alpha, gamma, &RewardSchedule::ethereum(), scenario, 150)? >= 0.0 {
                needed = Some(gamma);
                break;
            }
        }
        match needed {
            Some(g) => println!(
                "  {name}: profitable once the pool sways γ ≥ {g:.3} of honest miners in ties"
            ),
            None => println!("  {name}: never profitable at this size, even with γ = 1"),
        }
    }
    println!("\n(γ captures the pool's network-layer influence: the fraction of honest");
    println!("miners that mine on the pool's branch when they see a tie.)");
    Ok(())
}

fn fmt(t: Option<f64>) -> String {
    t.map_or("≥0.5".into(), |v| format!("{v:.3}"))
}
