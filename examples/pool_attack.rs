//! What if a real Ethereum mining pool turned selfish?
//!
//! Takes the paper's Fig. 6 snapshot of actual 2018 pool hash power and
//! asks, for each pool: if it ran Algorithm 1 while everyone else stayed
//! honest, how much extra revenue would it capture, and how much would the
//! rest of the network lose? This is the scenario motivating Section III-D
//! of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release --example pool_attack
//! ```

use selfish_ethereum::prelude::*;
use selfish_ethereum::sim::pools::TOP_POOLS_2018;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gamma = 0.5;
    let scenario = Scenario::RegularRate;
    println!("If a 2018 Ethereum pool went selfish (γ = {gamma}, pre-EIP100 difficulty):\n");
    println!(
        "{:<14} {:>7} {:>10} {:>10} {:>9} {:>12}",
        "pool", "α", "honest", "selfish", "gain", "others lose"
    );

    for pool in TOP_POOLS_2018.iter().filter(|p| p.name != "Others") {
        let alpha = pool.share;
        let params = ModelParams::new(alpha, gamma, RewardSchedule::ethereum())?;
        let revenue = Analysis::new(&params)?.revenue();
        let us = revenue.absolute_pool(scenario);
        let uh = revenue.absolute_honest(scenario);
        let honest_baseline = alpha;
        let gain = (us / honest_baseline - 1.0) * 100.0;
        let others_loss = (1.0 - alpha - uh) / (1.0 - alpha) * 100.0;
        println!(
            "{:<14} {:>7.4} {:>10.4} {:>10.4} {:>8.1}% {:>11.1}%",
            pool.name, alpha, honest_baseline, us, gain, others_loss
        );
    }

    // The biggest pool, validated by simulation with per-miner accounting:
    // 1000 total miners, Ethermine's share of them selfish.
    let ethermine = TOP_POOLS_2018[0];
    println!(
        "\nSimulating {} (α = {}) over 10 × 100k blocks...",
        ethermine.name, ethermine.share
    );
    let config = SimConfig::builder()
        .alpha(ethermine.share)
        .gamma(gamma)
        .n_honest(999)
        .blocks(100_000)
        .seed(1234)
        .build()?;
    let reports = multi::run_many(&config, 10);
    let us = multi::mean_absolute_pool(&reports, scenario);
    let uh = multi::mean_absolute_honest(&reports, scenario);
    println!("  measured Us = {:.4} ± {:.4}", us.mean, us.std_dev);
    println!("  measured Uh = {:.4} ± {:.4}", uh.mean, uh.std_dev);

    let sample = &reports[0];
    let (reg, unc, stale) = sample.block_type_fractions();
    println!(
        "  block mix: {:.1}% regular, {:.1}% uncle, {:.1}% stale",
        reg * 100.0,
        unc * 100.0,
        stale * 100.0
    );
    println!(
        "  pool blocks: {} regular, {} uncle, {} stale",
        sample.pool.regular_blocks, sample.pool.uncle_blocks, sample.pool.stale_blocks
    );
    println!(
        "  honest blocks: {} regular, {} uncle, {} stale",
        sample.honest.regular_blocks, sample.honest.uncle_blocks, sample.honest.stale_blocks
    );
    Ok(())
}
